package encoder

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/media"
)

func testProfile(t *testing.T) codec.Profile {
	t.Helper()
	p, err := codec.ByName("isdn-128k")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testLecture(t *testing.T) *capture.Lecture {
	t.Helper()
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title:           "Encoder test lecture",
		Duration:        20 * time.Second,
		Profile:         testProfile(t),
		SlideCount:      4,
		AnnotationEvery: 9 * time.Second,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return lec
}

func TestConfigValidate(t *testing.T) {
	good := Config{Profile: testProfile(t)}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{},
		{Profile: testProfile(t), LeadTime: -time.Second},
		{Profile: testProfile(t), Scripts: []asf.ScriptCommand{{Type: ""}}},
		{Profile: testProfile(t), Scripts: []asf.ScriptCommand{{Type: "x", At: -1}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEncodeToRequiresSource(t *testing.T) {
	sess, err := New(Config{Profile: testProfile(t)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.EncodeTo(io.Discard); !errors.Is(err, ErrNoSource) {
		t.Fatalf("err = %v, want ErrNoSource", err)
	}
}

func TestEncodeCameraAndMic(t *testing.T) {
	p := testProfile(t)
	sess, err := New(Config{Title: "AV", Profile: p})
	if err != nil {
		t.Fatal(err)
	}
	cam, err := capture.NewCamera(p, 4*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	mic, err := capture.NewMicrophone(p, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sess.AddSource(cam)
	sess.AddSource(mic)

	var buf bytes.Buffer
	stats, err := sess.EncodeTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.VideoPackets != 4*p.FrameRate {
		t.Errorf("video packets = %d, want %d", stats.VideoPackets, 4*p.FrameRate)
	}
	if stats.AudioPackets != int(4*time.Second/p.AudioBlock) {
		t.Errorf("audio packets = %d", stats.AudioPackets)
	}
	// The 15 fps frame interval does not divide 4 s exactly; the encoded
	// duration is within one frame interval of the nominal length.
	if diff := 4*time.Second - stats.Duration; diff < 0 || diff > p.FrameInterval() {
		t.Errorf("duration = %v, want within one frame of 4s", stats.Duration)
	}
	// Achieved rate near the profile's total.
	got := stats.BitsPerSecond()
	want := p.TotalBitsPerSecond()
	if got < want*7/10 || got > want*13/10 {
		t.Errorf("achieved %d bps, profile %d bps", got, want)
	}

	// The produced file parses and the streams are declared.
	r := asf.NewReader(bytes.NewReader(buf.Bytes()))
	h, err := r.ReadHeader()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.StreamByID(media.StreamVideo); !ok {
		t.Error("video stream not declared")
	}
	if _, ok := h.StreamByID(media.StreamAudio); !ok {
		t.Error("audio stream not declared")
	}
	if h.Live() {
		t.Error("stored session marked live")
	}
}

func TestEncodeSendTimesMonotone(t *testing.T) {
	lec := testLecture(t)
	var buf bytes.Buffer
	if _, err := EncodeLecture(lec, Config{LeadTime: time.Second}, &buf); err != nil {
		t.Fatal(err)
	}
	r := asf.NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := r.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	var prev time.Duration
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if p.SendAt < prev {
			t.Fatalf("send time went backwards: %v after %v", p.SendAt, prev)
		}
		prev = p.SendAt
	}
}

func TestEncodeLectureFull(t *testing.T) {
	lec := testLecture(t)
	var buf bytes.Buffer
	stats, err := EncodeLecture(lec, Config{LeadTime: 500 * time.Millisecond}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ImagePackets != 4 {
		t.Errorf("image packets = %d, want 4", stats.ImagePackets)
	}
	r := asf.NewReader(bytes.NewReader(buf.Bytes()))
	h, err := r.ReadHeader()
	if err != nil {
		t.Fatal(err)
	}
	// Scripts: 4 slide flips + 2 annotations, sorted by time.
	if len(h.Scripts) != 6 {
		t.Fatalf("scripts = %d, want 6", len(h.Scripts))
	}
	for i := 1; i < len(h.Scripts); i++ {
		if h.Scripts[i].At < h.Scripts[i-1].At {
			t.Fatal("header scripts not sorted")
		}
	}
	if h.Title != lec.Title {
		t.Errorf("title = %q", h.Title)
	}
	// Stored lecture session: scripts in header, no in-band script packets.
	if stats.ScriptPkts != 0 {
		t.Errorf("stored session wrote %d in-band scripts", stats.ScriptPkts)
	}
}

func TestEncodeLiveEmitsInBandScripts(t *testing.T) {
	lec := testLecture(t)
	var buf bytes.Buffer
	stats, err := EncodeLecture(lec, Config{Live: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ScriptPkts != 6 {
		t.Fatalf("live session wrote %d in-band scripts, want 6", stats.ScriptPkts)
	}
	r := asf.NewReader(bytes.NewReader(buf.Bytes()))
	h, err := r.ReadHeader()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Live() {
		t.Fatal("live flag not set")
	}
	// Live stream has no trailing index.
	for {
		if _, err := r.ReadPacket(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if len(r.Index()) != 0 {
		t.Fatal("live stream has index")
	}
}

func TestEncodeDRMFlag(t *testing.T) {
	p := testProfile(t)
	sess, err := New(Config{Profile: p, DRM: true})
	if err != nil {
		t.Fatal(err)
	}
	mic, err := capture.NewMicrophone(p, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sess.AddSource(mic)
	var buf bytes.Buffer
	if _, err := sess.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	r := asf.NewReader(bytes.NewReader(buf.Bytes()))
	h, err := r.ReadHeader()
	if err != nil {
		t.Fatal(err)
	}
	if !h.DRM() {
		t.Fatal("DRM flag lost")
	}
}

func TestLastPacketFlags(t *testing.T) {
	lec := testLecture(t)
	var buf bytes.Buffer
	if _, err := EncodeLecture(lec, Config{}, &buf); err != nil {
		t.Fatal(err)
	}
	r := asf.NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := r.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	lastSeen := make(map[media.StreamID]bool)
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if lastSeen[p.Stream] {
			t.Fatalf("packet after PacketLast on stream %d", p.Stream)
		}
		if p.Last() {
			lastSeen[p.Stream] = true
		}
	}
	for _, id := range []media.StreamID{media.StreamVideo, media.StreamAudio, media.StreamImage} {
		if !lastSeen[id] {
			t.Errorf("stream %d never marked last", id)
		}
	}
}

func TestNewSampleSource(t *testing.T) {
	samples := []media.Sample{
		{Stream: media.StreamVideo, Kind: media.KindVideo, PTS: 0, Duration: time.Second, Data: []byte{1}},
	}
	src := NewSampleSource(media.KindVideo, samples)
	if src.Kind() != media.KindVideo {
		t.Fatal("kind wrong")
	}
	s, ok := src.Next()
	if !ok || s.PTS != 0 {
		t.Fatal("first sample wrong")
	}
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted source produced")
	}
	// Mutating the input after construction must not affect the source.
	samples[0].Data[0] = 99
}

// Package encoder implements the paper's configuration module (§2.5): the
// user selects the sources/devices to encode from and how to output the
// encoded content — either a stored .asf file or a real-time broadcast
// after configuring the server HTTP port and URL — and selects the
// bandwidth profile that best describes the content.
package encoder

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/media"
)

// Errors returned by encoding sessions.
var (
	ErrNoSource = errors.New("encoder: no media source configured")
)

// Config describes one encoding session.
type Config struct {
	// Title is the content title written into the header.
	Title string
	// Profile is the bandwidth profile to encode with.
	Profile codec.Profile
	// Live marks the session as a real-time broadcast (no trailing index).
	Live bool
	// DRM requests rights-managed output.
	DRM bool
	// Scripts are the temporal script commands to embed: in the header
	// for stored output, and additionally in-band for live output (clients
	// joining mid-broadcast never saw the header's table).
	Scripts []asf.ScriptCommand
	// LeadTime is how far ahead of a packet's PTS the server may transmit
	// it (send time = max(0, PTS - LeadTime)).
	LeadTime time.Duration
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	if c.LeadTime < 0 {
		return fmt.Errorf("encoder: negative lead time %v", c.LeadTime)
	}
	for i, sc := range c.Scripts {
		if sc.Type == "" {
			return fmt.Errorf("encoder: script %d has empty type", i)
		}
		if sc.At < 0 {
			return fmt.Errorf("encoder: script %d at negative time", i)
		}
	}
	return nil
}

// Stats summarizes an encoding session.
type Stats struct {
	Packets      uint32
	VideoPackets int
	AudioPackets int
	ScriptPkts   int
	ImagePackets int
	Bytes        int64
	VideoBytes   int64
	AudioBytes   int64
	Duration     time.Duration
}

// BitsPerSecond returns the achieved aggregate bit rate (all streams).
func (s Stats) BitsPerSecond() int64 {
	if s.Duration <= 0 {
		return 0
	}
	return int64(float64(s.Bytes*8) / s.Duration.Seconds())
}

// MediaBitsPerSecond returns the achieved audio+video bit rate, the figure
// the codec rate control targets (images and scripts ride on top).
func (s Stats) MediaBitsPerSecond() int64 {
	if s.Duration <= 0 {
		return 0
	}
	return int64(float64((s.VideoBytes+s.AudioBytes)*8) / s.Duration.Seconds())
}

// Session is one configured encode. Construct with New, add sources, then
// run with EncodeTo.
type Session struct {
	cfg     Config
	sources []capture.Source
	images  []capture.Slide
}

// New creates a session.
func New(cfg Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Session{cfg: cfg}, nil
}

// AddSource attaches a media source (camera, microphone, or file reader).
func (s *Session) AddSource(src capture.Source) {
	s.sources = append(s.sources, src)
}

// AddSlides attaches slide images to be carried on the image stream, each
// sent ahead of its display time.
func (s *Session) AddSlides(slides []capture.Slide) {
	s.images = append(s.images, slides...)
}

// Header builds the container header for this session.
func (s *Session) Header(duration time.Duration) asf.Header {
	var flags uint16
	if s.cfg.Live {
		flags |= asf.FlagLive
	}
	if s.cfg.DRM {
		flags |= asf.FlagDRM
	}
	h := asf.Header{
		Title:       s.cfg.Title,
		Flags:       flags,
		Duration:    duration,
		PacketAlign: 1400,
	}
	// Stored content carries the script table in the header; live content
	// carries commands in-band only (§2.1: commands are "added to live
	// streams through Windows Media Encoder") so clients joining
	// mid-broadcast see them exactly once.
	if !s.cfg.Live {
		h.Scripts = append(h.Scripts, s.cfg.Scripts...)
		sort.SliceStable(h.Scripts, func(i, j int) bool { return h.Scripts[i].At < h.Scripts[j].At })
	}

	seen := map[media.Kind]bool{}
	for _, src := range s.sources {
		seen[src.Kind()] = true
	}
	if seen[media.KindVideo] {
		h.Streams = append(h.Streams, asf.StreamProps{
			ID: media.StreamVideo, Kind: media.KindVideo, Codec: codec.VideoCodecName,
			BitsPerSecond: s.cfg.Profile.VideoBitsPerSecond,
			MaxSkew:       80 * time.Millisecond, MaxJitter: 40 * time.Millisecond,
		})
	}
	if seen[media.KindAudio] {
		h.Streams = append(h.Streams, asf.StreamProps{
			ID: media.StreamAudio, Kind: media.KindAudio, Codec: codec.AudioCodecName,
			BitsPerSecond: s.cfg.Profile.AudioBitsPerSecond,
			MaxSkew:       80 * time.Millisecond, MaxJitter: 40 * time.Millisecond,
		})
	}
	if len(s.images) > 0 {
		h.Streams = append(h.Streams, asf.StreamProps{
			ID: media.StreamImage, Kind: media.KindImage, Codec: "png",
			MaxSkew: 500 * time.Millisecond,
		})
	}
	if len(h.Scripts) > 0 || s.cfg.Live {
		h.Streams = append(h.Streams, asf.StreamProps{
			ID: media.StreamScript, Kind: media.KindScript, Codec: "script",
		})
	}
	return h
}

// queued is a packet awaiting multiplexing.
type queued struct {
	pkt asf.Packet
}

// EncodeTo drains all sources, multiplexes samples by send time, and writes
// the container to w. It returns session statistics.
func (s *Session) EncodeTo(w io.Writer) (Stats, error) {
	if len(s.sources) == 0 && len(s.images) == 0 {
		return Stats{}, ErrNoSource
	}

	var queue []queued
	var maxEnd time.Duration
	for _, src := range s.sources {
		for {
			sample, ok := src.Next()
			if !ok {
				break
			}
			sendAt := sample.PTS - s.cfg.LeadTime
			if sendAt < 0 {
				sendAt = 0
			}
			var flags uint8
			if sample.Keyframe {
				flags |= asf.PacketKeyframe
			}
			queue = append(queue, queued{pkt: asf.Packet{
				Stream:  sample.Stream,
				Kind:    sample.Kind,
				Flags:   flags,
				PTS:     sample.PTS,
				Dur:     sample.Duration,
				SendAt:  sendAt,
				Payload: sample.Data,
			}})
			if end := sample.PTS + sample.Duration; end > maxEnd {
				maxEnd = end
			}
		}
	}
	// Slides: send one display interval early where possible so the image
	// is resident when its script command fires.
	for _, slide := range s.images {
		sendAt := slide.At - s.cfg.LeadTime
		if sendAt < 0 {
			sendAt = 0
		}
		queue = append(queue, queued{pkt: asf.Packet{
			Stream:  media.StreamImage,
			Kind:    media.KindImage,
			Flags:   asf.PacketKeyframe,
			PTS:     slide.At,
			SendAt:  sendAt,
			Payload: slide.Image,
		}})
		if slide.At > maxEnd {
			maxEnd = slide.At
		}
	}
	// Live sessions carry script commands in-band.
	if s.cfg.Live {
		for _, cmd := range s.cfg.Scripts {
			pkt, err := asf.ScriptPacket(cmd, media.StreamScript)
			if err != nil {
				return Stats{}, fmt.Errorf("encoder: script packet: %w", err)
			}
			// Scripts ride the same send-ahead as media: with a LeadTime,
			// media due after the script is multiplexed before it, so a
			// script sent exactly at its fire time would present up to
			// LeadTime late behind that media (head-of-line blocking).
			if send := cmd.At - s.cfg.LeadTime; send > 0 {
				pkt.SendAt = send
			} else {
				pkt.SendAt = 0
			}
			queue = append(queue, queued{pkt: pkt})
			if cmd.At > maxEnd {
				maxEnd = cmd.At
			}
		}
	}

	// Multiplex by send time; PTS then stream break ties deterministically.
	sort.SliceStable(queue, func(i, j int) bool {
		a, b := queue[i].pkt, queue[j].pkt
		if a.SendAt != b.SendAt {
			return a.SendAt < b.SendAt
		}
		if a.PTS != b.PTS {
			return a.PTS < b.PTS
		}
		return a.Stream < b.Stream
	})

	// Mark each stream's final packet.
	lastIdx := make(map[media.StreamID]int)
	for i := range queue {
		lastIdx[queue[i].pkt.Stream] = i
	}
	for _, i := range lastIdx {
		queue[i].pkt.Flags |= asf.PacketLast
	}

	writer, err := asf.NewWriter(w, s.Header(maxEnd))
	if err != nil {
		return Stats{}, err
	}
	var stats Stats
	stats.Duration = maxEnd
	for _, q := range queue {
		if _, err := writer.WritePacket(q.pkt); err != nil {
			return stats, fmt.Errorf("encoder: write: %w", err)
		}
		stats.Bytes += int64(len(q.pkt.Payload))
		switch q.pkt.Kind {
		case media.KindVideo:
			stats.VideoPackets++
			stats.VideoBytes += int64(len(q.pkt.Payload))
		case media.KindAudio:
			stats.AudioPackets++
			stats.AudioBytes += int64(len(q.pkt.Payload))
		case media.KindScript:
			stats.ScriptPkts++
		case media.KindImage:
			stats.ImagePackets++
		}
	}
	if err := writer.Close(); err != nil {
		return stats, err
	}
	stats.Packets = writer.PacketCount()
	return stats, nil
}

// EncodeLecture is a convenience wrapper building a full session for a
// synthetic lecture: camera + microphone samples replayed from the lecture,
// slide images, and slide/annotation script commands.
func EncodeLecture(lec *capture.Lecture, cfg Config, w io.Writer) (Stats, error) {
	cfg.Title = lec.Title
	cfg.Profile = lec.Profile
	for _, s := range lec.Slides {
		cfg.Scripts = append(cfg.Scripts, asf.ScriptCommand{At: s.At, Type: "slide", Param: s.Name})
	}
	for _, a := range lec.Annotations {
		cfg.Scripts = append(cfg.Scripts, asf.ScriptCommand{At: a.At, Type: "annotation", Param: a.Text})
	}
	sess, err := New(cfg)
	if err != nil {
		return Stats{}, err
	}
	sess.AddSource(&sliceSource{kind: media.KindVideo, samples: lec.Video})
	sess.AddSource(&sliceSource{kind: media.KindAudio, samples: lec.Audio})
	sess.AddSlides(lec.Slides)
	return sess.EncodeTo(w)
}

// sliceSource replays pre-captured samples as a Source.
type sliceSource struct {
	kind    media.Kind
	samples []media.Sample
	pos     int
}

var _ capture.Source = (*sliceSource)(nil)

func (s *sliceSource) Next() (media.Sample, bool) {
	if s.pos >= len(s.samples) {
		return media.Sample{}, false
	}
	out := s.samples[s.pos]
	s.pos++
	return out, true
}

func (s *sliceSource) Kind() media.Kind { return s.kind }

// NewSampleSource exposes a pre-captured sample slice as a capture.Source
// (the "encode a media file" path of §2.5).
func NewSampleSource(kind media.Kind, samples []media.Sample) capture.Source {
	cp := make([]media.Sample, len(samples))
	copy(cp, samples)
	return &sliceSource{kind: kind, samples: cp}
}

package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualNowStartsAtEpoch(t *testing.T) {
	v := NewVirtual()
	if !v.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", v.Now(), Epoch)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	got := v.Advance(3 * time.Second)
	want := Epoch.Add(3 * time.Second)
	if !got.Equal(want) {
		t.Fatalf("Advance returned %v, want %v", got, want)
	}
	if !v.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", v.Now(), want)
	}
}

func TestVirtualAfterFiresInOrder(t *testing.T) {
	v := NewVirtual()
	c2 := v.After(2 * time.Second)
	c1 := v.After(1 * time.Second)
	v.Advance(5 * time.Second)

	t1 := <-c1
	t2 := <-c2
	if !t1.Equal(Epoch.Add(1 * time.Second)) {
		t.Errorf("first waiter fired at %v, want %v", t1, Epoch.Add(time.Second))
	}
	if !t2.Equal(Epoch.Add(2 * time.Second)) {
		t.Errorf("second waiter fired at %v, want %v", t2, Epoch.Add(2*time.Second))
	}
}

func TestVirtualAfterNonPositiveFiresImmediately(t *testing.T) {
	v := NewVirtual()
	select {
	case got := <-v.After(0):
		if !got.Equal(Epoch) {
			t.Fatalf("After(0) delivered %v, want %v", got, Epoch)
		}
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestVirtualAfterNotEarly(t *testing.T) {
	v := NewVirtual()
	ch := v.After(10 * time.Second)
	v.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("waiter fired before its deadline")
	default:
	}
	v.Advance(1 * time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("waiter did not fire at its deadline")
	}
}

func TestVirtualSleepWakesOnAdvance(t *testing.T) {
	v := NewVirtual()
	var wg sync.WaitGroup
	woke := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		v.Sleep(time.Second)
		close(woke)
	}()
	// Wait until the sleeper registered.
	for v.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(time.Second)
	select {
	case <-woke:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not wake after Advance")
	}
	wg.Wait()
}

func TestVirtualNextDeadline(t *testing.T) {
	v := NewVirtual()
	if _, ok := v.NextDeadline(); ok {
		t.Fatal("NextDeadline reported a waiter on an empty clock")
	}
	v.After(5 * time.Second)
	v.After(2 * time.Second)
	dl, ok := v.NextDeadline()
	if !ok {
		t.Fatal("NextDeadline found no waiter")
	}
	if want := Epoch.Add(2 * time.Second); !dl.Equal(want) {
		t.Fatalf("NextDeadline = %v, want %v", dl, want)
	}
}

func TestVirtualAdvanceTo(t *testing.T) {
	v := NewVirtual()
	target := Epoch.Add(42 * time.Second)
	v.AdvanceTo(target)
	if !v.Now().Equal(target) {
		t.Fatalf("Now() = %v, want %v", v.Now(), target)
	}
	// Moving backwards is a no-op.
	v.AdvanceTo(Epoch)
	if !v.Now().Equal(target) {
		t.Fatalf("AdvanceTo backwards moved the clock to %v", v.Now())
	}
}

func TestVirtualSameDeadlineFIFO(t *testing.T) {
	v := NewVirtual()
	a := v.After(time.Second)
	b := v.After(time.Second)
	v.Advance(time.Second)
	// Both fire at the same instant; both channels must be ready.
	select {
	case <-a:
	default:
		t.Fatal("first waiter not fired")
	}
	select {
	case <-b:
	default:
		t.Fatal("second waiter not fired")
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Minute)) {
		t.Fatal("Real.Now is implausibly far in the past")
	}
	start := time.Now()
	c.Sleep(time.Millisecond)
	if time.Since(start) < time.Millisecond {
		t.Fatal("Real.Sleep returned too early")
	}
}

package vclock

import (
	"context"
	"sync"
	"time"
)

// DefaultGranularity is the slot width a Wheel rounds deadlines up to
// when the caller passes zero. One millisecond keeps pacing error well
// under the player's stall tolerance while collapsing thousands of
// per-session timers into a handful of slots.
const DefaultGranularity = time.Millisecond

// Wheel batches many sleepers onto shared slot timers: each deadline is
// rounded up to the wheel's granularity and every sleeper landing in
// the same slot shares one broadcast channel backed by one timer. N
// paced sessions therefore cost one timer per active slot instead of
// one timer allocation per packet per session — the batched replacement
// for the per-session clock.After pacing loops.
//
// Each active slot is fired by its own short-lived goroutine rather
// than a central scheduler: on a loaded box a single scheduler
// goroutine becomes a serialization point (every slot's lateness
// includes the scheduler's own wait for CPU), whereas independent slot
// goroutines wake straight off their timers. An idle Wheel holds no
// goroutine and needs no Stop.
//
// A Wheel never fires a sleeper early: After(d) closes its channel
// between d and d+granularity after the call (plus wakeup latency). A
// Wheel on a Virtual clock participates in the usual
// NextDeadline/AdvanceTo driver idiom through its underlying clock.
type Wheel struct {
	clock Clock
	gran  time.Duration

	mu    sync.Mutex
	slots map[int64]chan struct{}
}

// NewWheel builds a wheel over clock (nil means the real clock) with
// the given slot granularity (non-positive means DefaultGranularity).
func NewWheel(clock Clock, gran time.Duration) *Wheel {
	if clock == nil {
		clock = Real{}
	}
	if gran <= 0 {
		gran = DefaultGranularity
	}
	return &Wheel{
		clock: clock,
		gran:  gran,
		slots: make(map[int64]chan struct{}),
	}
}

// closedSlot serves every non-positive wait without touching the wheel.
var closedSlot = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// slotOf rounds an absolute instant up to its slot index.
func (w *Wheel) slotOf(t time.Time) int64 {
	g := int64(w.gran)
	n := t.UnixNano()
	return (n + g - 1) / g
}

// After returns a channel that is closed once the wheel's clock reaches
// now+d, rounded up to the wheel's granularity. The channel is shared
// by every sleeper in the same slot; it carries no value — closing is
// the broadcast.
func (w *Wheel) After(d time.Duration) <-chan struct{} {
	if d <= 0 {
		return closedSlot
	}
	slot := w.slotOf(w.clock.Now().Add(d))
	w.mu.Lock()
	ch, ok := w.slots[slot]
	if !ok {
		ch = make(chan struct{})
		w.slots[slot] = ch
		go w.fire(slot, ch)
	}
	w.mu.Unlock()
	return ch
}

// Sleep blocks until d has elapsed on the wheel (rounded up to the
// granularity) or ctx is done, returning ctx's error in that case.
func (w *Wheel) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	select {
	case <-w.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// fire sleeps on the wheel's clock until the slot's instant, then
// broadcasts to every sleeper in the slot by closing its channel. The
// slot leaves the table before the close, so a sleeper arriving for the
// same index afterwards starts a fresh (immediately due) slot instead
// of racing the broadcast.
func (w *Wheel) fire(slot int64, ch chan struct{}) {
	due := time.Unix(0, slot*int64(w.gran))
	for {
		wait := due.Sub(w.clock.Now())
		if wait <= 0 {
			break
		}
		<-w.clock.After(wait)
	}
	w.mu.Lock()
	delete(w.slots, slot)
	w.mu.Unlock()
	close(ch)
}

// PendingSlots reports how many distinct slots currently have sleepers,
// for tests and introspection.
func (w *Wheel) PendingSlots() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.slots)
}

package vclock

import (
	"context"
	"sync"
	"testing"
	"time"
)

// advanceUntil drives a virtual clock forward in granularity steps
// until cond holds or the budget of steps runs out. The wheel's
// scheduler goroutine races the test goroutine for the clock's timer,
// so each step yields briefly.
func advanceUntil(t *testing.T, clk *Virtual, step time.Duration, cond func() bool) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if cond() {
			return
		}
		clk.Advance(step)
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatal("condition never held while advancing the clock")
}

func TestWheelNonPositiveWaitFiresImmediately(t *testing.T) {
	w := NewWheel(NewVirtual(), time.Millisecond)
	for _, d := range []time.Duration{0, -time.Second} {
		select {
		case <-w.After(d):
		default:
			t.Fatalf("After(%v) not already fired", d)
		}
	}
	if err := w.Sleep(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
}

func TestWheelNeverFiresEarlyAndRoundsUp(t *testing.T) {
	clk := NewVirtual()
	w := NewWheel(clk, time.Millisecond)

	// 2.5 ms rounds up to the 3 ms slot: not fired at 2 ms.
	ch := w.After(2500 * time.Microsecond)
	advanceUntil(t, clk, time.Millisecond, func() bool { return clk.Now().Sub(Epoch) >= 2*time.Millisecond })
	select {
	case <-ch:
		t.Fatal("fired before the deadline")
	default:
	}
	advanceUntil(t, clk, time.Millisecond, func() bool {
		select {
		case <-ch:
			return true
		default:
			return false
		}
	})
	if elapsed := clk.Now().Sub(Epoch); elapsed < 3*time.Millisecond {
		t.Fatalf("fired at %v, before the rounded-up 3ms deadline", elapsed)
	}
}

func TestWheelSharesSlotChannels(t *testing.T) {
	clk := NewVirtual()
	w := NewWheel(clk, time.Millisecond)
	// Same slot after rounding: one channel, one pending slot.
	a := w.After(400 * time.Microsecond)
	b := w.After(900 * time.Microsecond)
	if a != b {
		t.Fatal("sleepers in one slot got distinct channels")
	}
	if got := w.PendingSlots(); got != 1 {
		t.Fatalf("PendingSlots = %d, want 1", got)
	}
	c := w.After(5 * time.Millisecond)
	if c == a {
		t.Fatal("distinct slots share a channel")
	}
	if got := w.PendingSlots(); got != 2 {
		t.Fatalf("PendingSlots = %d, want 2", got)
	}
}

// TestWheelEarlierSlotPreemptsSleep: a far-future slot must not delay
// an earlier deadline that arrives while it pends — slots fire
// independently.
func TestWheelEarlierSlotPreemptsSleep(t *testing.T) {
	clk := NewVirtual()
	w := NewWheel(clk, time.Millisecond)
	far := w.After(time.Hour)
	// Let the far slot's goroutine park on the hour-long timer first.
	advanceUntil(t, clk, 0, func() bool { return clk.PendingWaiters() > 0 })
	near := w.After(2 * time.Millisecond)
	advanceUntil(t, clk, time.Millisecond, func() bool {
		select {
		case <-near:
			return true
		default:
			return false
		}
	})
	select {
	case <-far:
		t.Fatal("hour-long sleeper fired after milliseconds")
	default:
	}
}

func TestWheelSleepCancellation(t *testing.T) {
	w := NewWheel(NewVirtual(), time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Sleep(ctx, time.Hour) }()
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Sleep returned %v, want context.Canceled", err)
	}
}

// TestWheelDrainsAndRestarts proves slot goroutines exit once fired and
// fresh sleepers start fresh slots.
func TestWheelDrainsAndRestarts(t *testing.T) {
	clk := NewVirtual()
	w := NewWheel(clk, time.Millisecond)
	for round := 0; round < 3; round++ {
		ch := w.After(time.Millisecond)
		advanceUntil(t, clk, time.Millisecond, func() bool {
			select {
			case <-ch:
				return true
			default:
				return false
			}
		})
		advanceUntil(t, clk, 0, func() bool { return w.PendingSlots() == 0 })
	}
}

// TestWheelManyConcurrentSleepers hammers one wheel from many
// goroutines on the real clock — the production shape (thousands of
// paced sessions) in miniature, and the -race target for the wheel's
// internal locking.
func TestWheelManyConcurrentSleepers(t *testing.T) {
	w := NewWheel(Real{}, time.Millisecond)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			d := time.Duration(n%8+1) * time.Millisecond
			if err := w.Sleep(context.Background(), d); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := w.PendingSlots(); got != 0 {
		t.Fatalf("PendingSlots = %d after all sleepers woke", got)
	}
}

// Package vclock provides clock abstractions so that every simulation,
// scheduler, and pacing loop in the system can run against either the real
// wall clock or a deterministic virtual clock that advances only when told
// to. All time-dependent components in this repository accept a vclock.Clock
// rather than calling time.Now directly.
//
// The usual test idiom is a driver loop: goroutines under test sleep on a
// Virtual clock while the test advances it to each next deadline —
//
//	for !done() {
//	    if next, ok := clk.NextDeadline(); ok {
//	        clk.AdvanceTo(next)
//	    }
//	}
//
// — so hours of simulated pacing run in microseconds and every interleaving
// is reproducible.
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the minimal clock interface used throughout the system.
type Clock interface {
	// Now returns the current instant on this clock.
	Now() time.Time
	// After returns a channel that delivers the clock's time once that time
	// is at or past d from now.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the operating-system wall clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a deterministic, manually advanced clock: Now stands still
// until Advance or AdvanceTo moves it, and sleepers wake exactly at their
// deadline in deadline order (ties broken by wait registration order, so
// runs are reproducible). The zero value is not usable; construct with
// NewVirtual or NewVirtualAt. Virtual is safe for concurrent use, but the
// advancing side must be driven by the test or simulation — a Sleep with
// no one advancing blocks forever.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     int
}

var _ Clock = (*Virtual)(nil)

type waiter struct {
	at  time.Time
	ch  chan time.Time
	seq int // tiebreaker for deterministic ordering
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Epoch is the default start instant for virtual clocks: an arbitrary fixed
// point so that tests and benchmarks are reproducible.
var Epoch = time.Date(2002, time.July, 2, 9, 0, 0, 0, time.UTC)

// NewVirtual returns a Virtual clock starting at Epoch.
func NewVirtual() *Virtual { return NewVirtualAt(Epoch) }

// NewVirtualAt returns a Virtual clock starting at the given instant.
func NewVirtualAt(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock. The returned channel fires when Advance moves the
// clock to or past now+d. A non-positive d fires on the next Advance call
// (or immediately at the current time if d <= 0).
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.seq++
	heap.Push(&v.waiters, &waiter{at: v.now.Add(d), ch: ch, seq: v.seq})
	return ch
}

// Sleep implements Clock. Sleep on a Virtual clock blocks until another
// goroutine advances the clock far enough; callers coordinate via Advance.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// Advance moves the clock forward by d, firing every waiter whose deadline
// falls inside the window in deadline order; while a waiter is being fired
// Now reports that waiter's deadline, so code running at wake-up observes a
// consistent instant. It returns the new current time.
func (v *Virtual) Advance(d time.Duration) time.Time {
	v.mu.Lock()
	target := v.now.Add(d)
	for v.waiters.Len() > 0 && !v.waiters[0].at.After(target) {
		w := heap.Pop(&v.waiters).(*waiter)
		v.now = w.at
		w.ch <- w.at
	}
	v.now = target
	v.mu.Unlock()
	return target
}

// AdvanceTo moves the clock to instant t (no-op if t is not after now).
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	d := t.Sub(v.now)
	v.mu.Unlock()
	if d > 0 {
		v.Advance(d)
	}
}

// PendingWaiters reports how many After/Sleep callers are still waiting.
func (v *Virtual) PendingWaiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.waiters.Len()
}

// NextDeadline returns the earliest pending waiter deadline and true, or the
// zero time and false when no waiters are pending. Simulation drivers use it
// to advance exactly to the next interesting instant.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.waiters.Len() == 0 {
		return time.Time{}, false
	}
	return v.waiters[0].at, true
}

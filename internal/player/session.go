package player

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/asf"
	"repro/internal/media"
)

// ControlKind enumerates interactive playback controls — the "dynamical
// operations of users" (§1) the extended timed Petri net was introduced to
// handle.
type ControlKind int

// Controls.
const (
	CtlPause ControlKind = iota + 1
	CtlResume
	CtlSeek
)

// String implements fmt.Stringer.
func (k ControlKind) String() string {
	switch k {
	case CtlPause:
		return "pause"
	case CtlResume:
		return "resume"
	case CtlSeek:
		return "seek"
	default:
		return fmt.Sprintf("control(%d)", int(k))
	}
}

// Control is one timed user action on the playback session. At is the
// wall-clock offset from playback start at which the user acts; Target is
// the media position for CtlSeek.
type Control struct {
	Kind   ControlKind
	At     time.Duration
	Target time.Duration
}

// SessionEvent is one presented item of an interactive session: the
// packet's media time (PTS) and the wall time at which it was presented.
type SessionEvent struct {
	Kind media.Kind
	PTS  time.Duration
	Wall time.Duration
}

// SessionResult is the outcome of an interactive playback session.
type SessionResult struct {
	Events []SessionEvent
	// SlideFlips are the script commands executed, with wall times.
	SlideFlips []SessionEvent
	// TotalPaused is the accumulated pause time.
	TotalPaused time.Duration
	// Seeks counts executed seeks.
	Seeks int
	// EndedAt is the wall time at which the last item was presented.
	EndedAt time.Duration
}

// EventsInWallOrder reports whether presentation wall times are
// non-decreasing — the basic sanity invariant of any control timeline.
func (r *SessionResult) EventsInWallOrder() bool {
	for i := 1; i < len(r.Events); i++ {
		if r.Events[i].Wall < r.Events[i-1].Wall {
			return false
		}
	}
	return true
}

// Errors.
var (
	ErrBadControl = errors.New("player: invalid control sequence")
)

// segment is one contiguous run of media time played at a wall offset:
// wall(w) = mediaStart + (w - wallStart) for w in [wallStart, wallEnd).
type segment struct {
	wallStart  time.Duration
	wallEnd    time.Duration // exclusive; maxDuration for the last
	mediaStart time.Duration
}

const maxDuration = time.Duration(1<<63 - 1)

// RunSession deterministically plays a stored asset under a sequence of
// user controls. Pause freezes the media position; resume continues it;
// seek jumps the media position to the last keyframe at or before the
// target (using the stored index, §2.1's seek support). Packets are
// presented when the playback position passes their PTS; seeking backward
// replays, seeking forward skips.
func RunSession(header asf.Header, packets []asf.Packet, index asf.Index, controls []Control) (*SessionResult, error) {
	ctls := make([]Control, len(controls))
	copy(ctls, controls)
	sort.SliceStable(ctls, func(i, j int) bool { return ctls[i].At < ctls[j].At })

	// Build the wall→media timeline by walking the controls.
	var segs []segment
	res := &SessionResult{}
	paused := false
	var media0 time.Duration // media position at the current anchor
	var wall0 time.Duration  // wall time of the current anchor
	openSegment := func(wall, mediaAt time.Duration) {
		segs = append(segs, segment{wallStart: wall, wallEnd: maxDuration, mediaStart: mediaAt})
	}
	closeSegment := func(wall time.Duration) {
		if len(segs) > 0 && segs[len(segs)-1].wallEnd == maxDuration {
			segs[len(segs)-1].wallEnd = wall
		}
	}
	openSegment(0, 0)

	for _, c := range ctls {
		if c.At < 0 {
			return nil, fmt.Errorf("%w: control at negative time", ErrBadControl)
		}
		switch c.Kind {
		case CtlPause:
			if paused {
				return nil, fmt.Errorf("%w: pause while paused", ErrBadControl)
			}
			media0 += c.At - wall0
			wall0 = c.At
			closeSegment(c.At)
			paused = true
		case CtlResume:
			if !paused {
				return nil, fmt.Errorf("%w: resume while playing", ErrBadControl)
			}
			res.TotalPaused += c.At - wall0
			wall0 = c.At
			openSegment(c.At, media0)
			paused = false
		case CtlSeek:
			if c.Target < 0 {
				return nil, fmt.Errorf("%w: seek to negative position", ErrBadControl)
			}
			target := c.Target
			if seq, ok := index.Locate(target); ok {
				// Snap to the keyframe's PTS.
				for _, p := range packets {
					if p.Seq == seq {
						target = p.PTS
						break
					}
				}
			} else {
				target = 0
			}
			res.Seeks++
			if !paused {
				media0 += c.At - wall0
				closeSegment(c.At)
				openSegment(c.At, target)
			}
			media0 = target
			wall0 = c.At
		default:
			return nil, fmt.Errorf("%w: unknown control %d", ErrBadControl, int(c.Kind))
		}
	}
	if paused {
		// Session ends paused: nothing after the pause plays.
		closeSegment(wall0)
	}

	// Present packets: for each timeline segment, every packet whose PTS
	// falls in [mediaStart, mediaStart + segLen) is presented at
	// wallStart + (PTS - mediaStart).
	sorted := make([]asf.Packet, len(packets))
	copy(sorted, packets)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].PTS < sorted[j].PTS })

	var scripts []asf.ScriptCommand
	scripts = append(scripts, header.Scripts...)
	sort.SliceStable(scripts, func(i, j int) bool { return scripts[i].At < scripts[j].At })

	for _, s := range segs {
		segLen := s.wallEnd - s.wallStart
		if s.wallEnd == maxDuration {
			segLen = maxDuration - s.wallStart
		}
		for _, p := range sorted {
			off := p.PTS - s.mediaStart
			if off < 0 || off >= segLen {
				continue
			}
			wall := s.wallStart + off
			res.Events = append(res.Events, SessionEvent{Kind: p.Kind, PTS: p.PTS, Wall: wall})
			if wall > res.EndedAt {
				res.EndedAt = wall
			}
		}
		for _, sc := range scripts {
			off := sc.At - s.mediaStart
			if off < 0 || off >= segLen {
				continue
			}
			if sc.Type != "slide" {
				continue
			}
			wall := s.wallStart + off
			res.SlideFlips = append(res.SlideFlips, SessionEvent{
				Kind: media.KindScript, PTS: sc.At, Wall: wall,
			})
		}
	}
	sort.SliceStable(res.Events, func(i, j int) bool { return res.Events[i].Wall < res.Events[j].Wall })
	sort.SliceStable(res.SlideFlips, func(i, j int) bool { return res.SlideFlips[i].Wall < res.SlideFlips[j].Wall })
	return res, nil
}

package player

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/encoder"
	"repro/internal/media"
)

// sessionAsset builds a small stored asset and returns header, packets,
// and index.
func sessionAsset(t *testing.T) (asf.Header, []asf.Packet, asf.Index) {
	t.Helper()
	data, _ := testLectureBytes(t, 10*time.Second, encoder.Config{})
	r := asf.NewReader(bytes.NewReader(data))
	h, err := r.ReadHeader()
	if err != nil {
		t.Fatal(err)
	}
	var pkts []asf.Packet
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, p)
	}
	return h, pkts, r.Index()
}

func TestSessionNoControlsIsIdentity(t *testing.T) {
	h, pkts, ix := sessionAsset(t)
	res, err := RunSession(h, pkts, ix, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != len(pkts) {
		t.Fatalf("presented %d events, want %d", len(res.Events), len(pkts))
	}
	for _, e := range res.Events {
		if e.Wall != e.PTS {
			t.Fatalf("no-control session shifted %v to wall %v", e.PTS, e.Wall)
		}
	}
	if !res.EventsInWallOrder() {
		t.Fatal("events out of wall order")
	}
	if res.TotalPaused != 0 || res.Seeks != 0 {
		t.Fatalf("spurious control accounting: %+v", res)
	}
}

func TestSessionPauseShiftsTail(t *testing.T) {
	h, pkts, ix := sessionAsset(t)
	res, err := RunSession(h, pkts, ix, []Control{
		{Kind: CtlPause, At: 4 * time.Second},
		{Kind: CtlResume, At: 7 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPaused != 3*time.Second {
		t.Fatalf("TotalPaused = %v", res.TotalPaused)
	}
	for _, e := range res.Events {
		if e.PTS < 4*time.Second {
			if e.Wall != e.PTS {
				t.Fatalf("pre-pause event shifted: pts %v wall %v", e.PTS, e.Wall)
			}
		} else if e.Wall != e.PTS+3*time.Second {
			t.Fatalf("post-pause event pts %v at wall %v, want %v", e.PTS, e.Wall, e.PTS+3*time.Second)
		}
	}
	if !res.EventsInWallOrder() {
		t.Fatal("events out of wall order")
	}
}

func TestSessionSlideFlipsShiftWithPause(t *testing.T) {
	h, pkts, ix := sessionAsset(t)
	// Slides at 0s, 3.33s, 6.67s (10s/3 slides). Pause at 5s for 2s.
	res, err := RunSession(h, pkts, ix, []Control{
		{Kind: CtlPause, At: 5 * time.Second},
		{Kind: CtlResume, At: 7 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SlideFlips) == 0 {
		t.Fatal("no slide flips")
	}
	for _, f := range res.SlideFlips {
		want := f.PTS
		if f.PTS >= 5*time.Second {
			want += 2 * time.Second
		}
		if f.Wall != want {
			t.Fatalf("flip pts %v at wall %v, want %v", f.PTS, f.Wall, want)
		}
	}
}

func TestSessionEndsPaused(t *testing.T) {
	h, pkts, ix := sessionAsset(t)
	res, err := RunSession(h, pkts, ix, []Control{
		{Kind: CtlPause, At: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Events {
		if e.PTS >= 2*time.Second {
			t.Fatalf("event pts %v presented after final pause", e.PTS)
		}
	}
}

func TestSessionSeekForwardSkips(t *testing.T) {
	h, pkts, ix := sessionAsset(t)
	// At wall 2s, seek to 8s: media 2s..8s is skipped (modulo keyframe
	// snap-back).
	res, err := RunSession(h, pkts, ix, []Control{
		{Kind: CtlSeek, At: 2 * time.Second, Target: 8 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeks != 1 {
		t.Fatalf("Seeks = %d", res.Seeks)
	}
	// The seek snaps to the last keyframe ≤ 8 s; everything from the snap
	// point on plays exactly once, shifted earlier.
	var snap time.Duration = -1
	for _, e := range res.Events {
		if e.Wall >= 2*time.Second && (snap == -1 || e.PTS < snap) {
			snap = e.PTS
		}
	}
	if snap > 8*time.Second {
		t.Fatalf("seek snapped forward past the target: %v", snap)
	}
	for _, e := range res.Events {
		if e.Wall < 2*time.Second {
			continue
		}
		if want := 2*time.Second + (e.PTS - snap); e.Wall != want {
			t.Fatalf("post-seek pts %v at wall %v, want %v", e.PTS, e.Wall, want)
		}
	}
}

func TestSessionSeekBackwardReplays(t *testing.T) {
	h, pkts, ix := sessionAsset(t)
	res, err := RunSession(h, pkts, ix, []Control{
		{Kind: CtlSeek, At: 6 * time.Second, Target: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Media [0,6s) plays twice: once before the seek, once after.
	count := 0
	for _, e := range res.Events {
		if e.Kind == media.KindVideo && e.PTS == 0 {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("first frame presented %d times, want 2 (replay)", count)
	}
	if !res.EventsInWallOrder() {
		t.Fatal("events out of wall order")
	}
}

func TestSessionSeekWhilePaused(t *testing.T) {
	h, pkts, ix := sessionAsset(t)
	res, err := RunSession(h, pkts, ix, []Control{
		{Kind: CtlPause, At: 3 * time.Second},
		{Kind: CtlSeek, At: 4 * time.Second, Target: 0},
		{Kind: CtlResume, At: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	// After resume at wall 5 s the session replays from media 0.
	found := false
	for _, e := range res.Events {
		if e.PTS == 0 && e.Wall == 5*time.Second {
			found = true
		}
	}
	if !found {
		t.Fatal("paused seek did not take effect at resume")
	}
}

func TestSessionControlValidation(t *testing.T) {
	h, pkts, ix := sessionAsset(t)
	bad := [][]Control{
		{{Kind: CtlPause, At: 1 * time.Second}, {Kind: CtlPause, At: 2 * time.Second}},
		{{Kind: CtlResume, At: 1 * time.Second}},
		{{Kind: CtlPause, At: -time.Second}},
		{{Kind: CtlSeek, At: time.Second, Target: -time.Second}},
		{{Kind: ControlKind(99), At: time.Second}},
	}
	for i, ctls := range bad {
		if _, err := RunSession(h, pkts, ix, ctls); !errors.Is(err, ErrBadControl) {
			t.Errorf("bad control set %d: err = %v, want ErrBadControl", i, err)
		}
	}
}

func TestControlKindString(t *testing.T) {
	if CtlPause.String() != "pause" || CtlSeek.String() != "seek" {
		t.Fatal("control names wrong")
	}
	if got := ControlKind(42).String(); got != "control(42)" {
		t.Fatalf("unknown control = %q", got)
	}
}

// Package player implements the client side of the Lecture-on-Demand
// system: it fetches a container stream (from an io.Reader or an HTTP URL),
// demultiplexes packets, executes script commands (slide flips,
// annotations) in time with the media, and records exactly what would have
// been rendered and when, so synchronization skew is measurable.
//
// The paper's player is "the browser with the windows media services"; the
// substitution here replaces pixels with an instrumented event log — the
// timing behaviour, which is what the experiments measure, is identical.
package player

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/asf"
	"repro/internal/codec"
	"repro/internal/media"
	"repro/internal/vclock"
)

// Errors.
var (
	// ErrDRMNotLicensed is returned when content requires rights management
	// and the player has no license callback (rendering DRM is mandatory
	// per §2.1).
	ErrDRMNotLicensed = errors.New("player: content requires DRM license")
)

// EventKind classifies render-log entries.
type EventKind int

// Event kinds.
const (
	EventVideoFrame EventKind = iota + 1
	EventAudioBlock
	EventSlideShown
	EventAnnotation
	EventScript
	EventStall
)

var eventNames = map[EventKind]string{
	EventVideoFrame: "video",
	EventAudioBlock: "audio",
	EventSlideShown: "slide",
	EventAnnotation: "annotation",
	EventScript:     "script",
	EventStall:      "stall",
}

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one rendered item: what was presented, when the media timeline
// said it should appear (PTS), and when the player actually presented it
// (At, on the playback clock).
type Event struct {
	Kind  EventKind
	PTS   time.Duration
	At    time.Duration
	Param string
	Bytes int
}

// Skew is the presentation lateness: At - PTS (never negative; the player
// does not present early).
func (e Event) Skew() time.Duration { return e.At - e.PTS }

// Metrics summarizes a playback session.
type Metrics struct {
	Events       []Event
	VideoFrames  int
	AudioBlocks  int
	SlidesShown  int
	Annotations  int
	Stalls       int
	StallTime    time.Duration
	MaxSkew      time.Duration
	MeanSkew     time.Duration
	Decodable    int
	BrokenFrames int
	BytesRead    int64
	Duration     time.Duration
	// FinalURL is the URL that actually served the stream when playing
	// via PlayURL — after following any redirects, so through a relay
	// registry it names the edge, not the registry. Empty for Play.
	FinalURL string
}

// LastPTS returns the latest media timestamp (video or audio) the
// session received — the offset a failed-over client resumes a VOD
// stream from via ?start=. Zero when no media arrived.
func (m *Metrics) LastPTS() time.Duration {
	var last time.Duration
	for _, e := range m.Events {
		if (e.Kind == EventVideoFrame || e.Kind == EventAudioBlock) && e.PTS > last {
			last = e.PTS
		}
	}
	return last
}

// Merge folds a resumed segment's metrics into m: counters and bytes
// sum, events append, and the skew statistics are recomputed over the
// combined event log. The failover path plays each reconnect as its own
// stream (fresh header, fresh anchor) and merges the segments so the
// session reports one set of numbers. The resume seek rewinds to the
// last keyframe, so a few frames around the failure point can be
// counted in both segments.
func (m *Metrics) Merge(next *Metrics) {
	if next == nil {
		return
	}
	m.Events = append(m.Events, next.Events...)
	m.VideoFrames += next.VideoFrames
	m.AudioBlocks += next.AudioBlocks
	m.SlidesShown += next.SlidesShown
	m.Annotations += next.Annotations
	m.Stalls += next.Stalls
	m.StallTime += next.StallTime
	m.Decodable += next.Decodable
	m.BrokenFrames += next.BrokenFrames
	m.BytesRead += next.BytesRead
	m.Duration += next.Duration
	if next.FinalURL != "" {
		m.FinalURL = next.FinalURL
	}
	m.recomputeSkew()
}

// recomputeSkew rebuilds MaxSkew/MeanSkew from the event log: the skew
// of every non-stall event, clamped at zero (the player never presents
// early).
func (m *Metrics) recomputeSkew() {
	m.MaxSkew, m.MeanSkew = 0, 0
	var total time.Duration
	var count int
	for _, e := range m.Events {
		if e.Kind == EventStall {
			continue
		}
		skew := e.Skew()
		if skew < 0 {
			skew = 0
		}
		if skew > m.MaxSkew {
			m.MaxSkew = skew
		}
		total += skew
		count++
	}
	if count > 0 {
		m.MeanSkew = total / time.Duration(count)
	}
}

// SlideEvents returns the slide-flip events in order.
func (m *Metrics) SlideEvents() []Event {
	var out []Event
	for _, e := range m.Events {
		if e.Kind == EventSlideShown {
			out = append(out, e)
		}
	}
	return out
}

// SkewWithin reports whether every media event's skew is at most max.
func (m *Metrics) SkewWithin(max time.Duration) bool {
	return m.MaxSkew <= max
}

// Options configures a playback session.
type Options struct {
	// Clock drives presentation; nil uses the real clock.
	Clock vclock.Clock
	// JitterBufferDepth is how many packets are buffered before playback
	// starts (absorbs network jitter). Zero disables pre-buffering.
	JitterBufferDepth int
	// Realtime, when true, makes the player wait on the clock until each
	// item's PTS before presenting it; when false the player presents as
	// fast as packets arrive, timestamping presentation by packet arrival
	// order (used for analytic runs where the transport already paced).
	Realtime bool
	// AnchorToFirstPacket, with Realtime, starts the presentation
	// schedule when playback begins — at the first packet's dequeue,
	// which with a JitterBufferDepth is the moment the prebuffer
	// finishes filling, exactly like a real player that buffers before
	// it starts rendering. The deadline for an item with timestamp t
	// becomes playbackStart + (t - firstPacketPTS). Connection setup,
	// server startup delay, and the deliberate buffering delay then
	// shift the whole schedule instead of counting every item as late,
	// so Stalls and skew measure genuine mid-stream rebuffering — what
	// a load benchmark wants — rather than constant startup offset. It
	// also makes seeked and live catch-up streams (whose first PTS is
	// far from zero) playable in realtime mode. Metrics report
	// presentation times on the anchored schedule, and header scripts
	// the stream skipped past (their time is before the first packet)
	// are treated as catch-up content due at the anchor rather than as
	// infinitely late.
	AnchorToFirstPacket bool
	// StallTolerance is how late an item may present before it counts
	// as a stall event (Realtime only). OS timer and scheduler
	// precision make a few milliseconds of lateness unavoidable, so a
	// load benchmark sets a human-scale threshold here to keep Stalls
	// meaning rebuffers; lateness within the tolerance still shows in
	// the skew statistics. Zero counts every late item.
	StallTolerance time.Duration
	// LicenseDRM, when true, simulates holding a playback license.
	LicenseDRM bool
	// IgnoreHeaderScripts drops the header script table, relying only on
	// in-band script packets (the script-placement ablation).
	IgnoreHeaderScripts bool
}

// Player plays one container stream.
type Player struct {
	opts Options
}

// New creates a player.
func New(opts Options) *Player {
	if opts.Clock == nil {
		opts.Clock = vclock.Real{}
	}
	return &Player{opts: opts}
}

// PlayURL fetches the stream over HTTP and plays it. Cancelling ctx
// aborts the fetch — including a blocked in-flight body read — so a
// draining caller never waits out a stalled lecture.
func (p *Player) PlayURL(ctx context.Context, url string) (*Metrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("player: fetch %s: %w", url, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("player: fetch %s: %w", url, err)
	}
	defer func() {
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("player: fetch %s: status %s", url, resp.Status)
	}
	m, err := p.Play(resp.Body)
	if m != nil && resp.Request != nil && resp.Request.URL != nil {
		m.FinalURL = resp.Request.URL.String()
	}
	return m, err
}

// Play consumes the container from r, rendering to the event log.
func (p *Player) Play(r io.Reader) (*Metrics, error) {
	reader := asf.NewReader(r)
	h, err := reader.ReadHeader()
	if err != nil {
		return nil, fmt.Errorf("player: %w", err)
	}
	if h.DRM() && !p.opts.LicenseDRM {
		return nil, ErrDRMNotLicensed
	}

	m := &Metrics{}
	clock := p.opts.Clock
	start := clock.Now()
	// With AnchorToFirstPacket, start is re-based to the first packet's
	// arrival and ptsBase to its timestamp; present() then reports
	// instants on the anchored schedule so Event.Skew stays At - PTS.
	var ptsBase time.Duration
	anchored := false
	elapsed := func() time.Duration { return clock.Now().Sub(start) }
	present := func() time.Duration { return elapsed() + ptsBase }

	// Pending header scripts sorted by time.
	var scripts []asf.ScriptCommand
	if !p.opts.IgnoreHeaderScripts {
		scripts = append(scripts, h.Scripts...)
		sort.SliceStable(scripts, func(i, j int) bool { return scripts[i].At < scripts[j].At })
	}
	execScripts := func(upTo time.Duration) {
		for len(scripts) > 0 && scripts[0].At <= upTo {
			cmd := scripts[0]
			if anchored && cmd.At < ptsBase {
				// The stream starts past this script (seek tail or live
				// catch-up): it presents as join-time catch-up content,
				// due at the anchor, not late since stream time zero.
				cmd.At = ptsBase
			}
			p.renderScript(m, cmd, present())
			scripts = scripts[1:]
		}
	}

	var vdec codec.VideoDecoder

	// Jitter buffer: pre-read packets before starting the clock.
	var buffer []asf.Packet
	fill := p.opts.JitterBufferDepth
	for len(buffer) < fill {
		pkt, err := reader.ReadPacket()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("player: prebuffer: %w", err)
		}
		buffer = append(buffer, pkt)
	}

	next := func() (asf.Packet, bool, error) {
		if len(buffer) > 0 {
			pkt := buffer[0]
			buffer = buffer[1:]
			return pkt, true, nil
		}
		pkt, err := reader.ReadPacket()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return asf.Packet{}, false, nil
			}
			return asf.Packet{}, false, err
		}
		return pkt, true, nil
	}

	for {
		pkt, ok, err := next()
		if err != nil {
			return m, fmt.Errorf("player: %w", err)
		}
		if !ok {
			break
		}
		m.BytesRead += int64(len(pkt.Payload))

		if p.opts.Realtime && p.opts.AnchorToFirstPacket && !anchored {
			anchored = true
			start = clock.Now()
			ptsBase = pkt.PTS
		}
		if p.opts.Realtime {
			// Wait until the item is due; arriving late beyond the
			// tolerance counts as a stall.
			if wait := pkt.PTS - present(); wait > 0 {
				clock.Sleep(wait)
			} else if wait < 0 && -wait > p.opts.StallTolerance {
				m.Stalls++
				m.StallTime += -wait
				m.Events = append(m.Events, Event{Kind: EventStall, PTS: pkt.PTS, At: present()})
			}
		}
		now := present()
		execScripts(pkt.PTS)

		switch pkt.Kind {
		case media.KindVideo:
			vdec.Feed(pkt.Payload)
			m.VideoFrames++
			m.Events = append(m.Events, Event{Kind: EventVideoFrame, PTS: pkt.PTS, At: now, Bytes: len(pkt.Payload)})
		case media.KindAudio:
			m.AudioBlocks++
			m.Events = append(m.Events, Event{Kind: EventAudioBlock, PTS: pkt.PTS, At: now, Bytes: len(pkt.Payload)})
		case media.KindImage:
			// Images are cached on arrival; the script command shows them.
		case media.KindScript:
			cmd, err := asf.ParseScriptPacket(pkt)
			if err != nil {
				return m, fmt.Errorf("player: %w", err)
			}
			p.renderScript(m, cmd, now)
		}
	}
	execScripts(1<<62 - 1)

	m.Decodable = vdec.Decodable
	m.BrokenFrames = vdec.Broken
	m.Duration = elapsed()
	p.finalizeSkew(m)
	return m, nil
}

// renderScript turns a script command into a rendered event.
func (p *Player) renderScript(m *Metrics, cmd asf.ScriptCommand, at time.Duration) {
	kind := EventScript
	switch cmd.Type {
	case "slide":
		kind = EventSlideShown
		m.SlidesShown++
	case "annotation":
		kind = EventAnnotation
		m.Annotations++
	}
	m.Events = append(m.Events, Event{Kind: kind, PTS: cmd.At, At: at, Param: cmd.Param})
}

// finalizeSkew computes skew statistics over media and script events.
func (p *Player) finalizeSkew(m *Metrics) {
	if !p.opts.Realtime {
		return // arrival-order playback has no meaningful wall skew
	}
	m.recomputeSkew()
}

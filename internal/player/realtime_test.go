package player

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/encoder"
	"repro/internal/vclock"
)

// driveClock advances the virtual clock until done closes.
func driveClock(t *testing.T, clk *vclock.Virtual, done <-chan struct{}) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case <-done:
			return
		default:
			if next, ok := clk.NextDeadline(); ok {
				clk.AdvanceTo(next)
			} else {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}
	t.Fatal("realtime playback did not finish")
}

func TestRealtimePlaybackPresentsOnSchedule(t *testing.T) {
	data, lec := testLectureBytes(t, 2*time.Second, encoder.Config{})
	clk := vclock.NewVirtual()
	pl := New(Options{Realtime: true, Clock: clk})

	done := make(chan struct{})
	var m *Metrics
	var err error
	go func() {
		defer close(done)
		m, err = pl.Play(bytes.NewReader(data))
	}()
	driveClock(t, clk, done)
	if err != nil {
		t.Fatal(err)
	}
	if m.VideoFrames != len(lec.Video) {
		t.Fatalf("frames = %d, want %d", m.VideoFrames, len(lec.Video))
	}
	// With the whole file available instantly, every item is presented
	// exactly at its PTS: zero skew, zero stalls.
	if m.Stalls != 0 {
		t.Fatalf("stalls = %d on instant source", m.Stalls)
	}
	if m.MaxSkew != 0 {
		t.Fatalf("max skew = %v on instant source", m.MaxSkew)
	}
	// The playback took (virtual) real time: the clock advanced about the
	// lecture duration.
	if m.Duration < 1900*time.Millisecond {
		t.Fatalf("playback duration %v, want ≈2s", m.Duration)
	}
}

// slowReader releases its underlying bytes only after the virtual clock
// passes per-chunk release times, simulating a startved network feed.
type slowReader struct {
	data    []byte
	pos     int
	clk     *vclock.Virtual
	chunk   int
	perWait time.Duration
}

func (s *slowReader) Read(p []byte) (int, error) {
	if s.pos >= len(s.data) {
		return 0, errEOF{}
	}
	// Every chunk boundary costs one wait on the clock.
	if s.pos > 0 && s.pos%s.chunk < len(p) {
		s.clk.Sleep(s.perWait)
	}
	n := copy(p, s.data[s.pos:])
	if n > s.chunk {
		n = s.chunk
	}
	s.pos += n
	return n, nil
}

type errEOF struct{}

func (errEOF) Error() string { return "EOF" }

// TestAnchorToFirstPacketPlaysSeekTails plays a stream whose first
// packet sits deep in the presentation (a seeked VOD tail or a live
// catch-up join). Un-anchored realtime playback waits out the absolute
// PTS of the first item — the whole skipped prefix — before presenting
// anything; anchored playback re-bases the schedule at the first packet
// and plays only the remaining material, cleanly.
func TestAnchorToFirstPacketPlaysSeekTails(t *testing.T) {
	data, _ := testLectureBytes(t, 2*time.Second, encoder.Config{})
	h, packets, _, err := asf.ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the container from the midpoint on, like /vod/x?start=1s.
	const seek = time.Second
	var tail bytes.Buffer
	w, err := asf.NewWriter(&tail, h)
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for _, p := range packets {
		if p.PTS >= seek {
			if _, err := w.WritePacket(p); err != nil {
				t.Fatal(err)
			}
			kept++
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if kept == 0 {
		t.Fatal("no tail packets")
	}

	play := func(anchor bool) *Metrics {
		clk := vclock.NewVirtual()
		pl := New(Options{Realtime: true, AnchorToFirstPacket: anchor, Clock: clk, IgnoreHeaderScripts: true})
		done := make(chan struct{})
		var m *Metrics
		var perr error
		go func() {
			defer close(done)
			m, perr = pl.Play(bytes.NewReader(tail.Bytes()))
		}()
		driveClock(t, clk, done)
		if perr != nil {
			t.Fatal(perr)
		}
		return m
	}

	plain := play(false)
	if plain.Duration < 1900*time.Millisecond {
		t.Fatalf("un-anchored tail playback took %v, expected to wait out the skipped prefix (≈2s)", plain.Duration)
	}
	anchored := play(true)
	if anchored.Duration > 1200*time.Millisecond {
		t.Fatalf("anchored tail playback took %v, want ≈1s (tail only)", anchored.Duration)
	}
	if anchored.Stalls != 0 {
		t.Fatalf("anchored playback stalled %d times (stall time %v)", anchored.Stalls, anchored.StallTime)
	}
	if anchored.MaxSkew != 0 {
		t.Fatalf("anchored max skew = %v, want 0 on an instant source", anchored.MaxSkew)
	}
	if anchored.VideoFrames != plain.VideoFrames {
		t.Fatalf("anchored presented %d frames, un-anchored %d", anchored.VideoFrames, plain.VideoFrames)
	}
}

func TestRealtimePlaybackCountsStallsOnStarvedSource(t *testing.T) {
	data, _ := testLectureBytes(t, 2*time.Second, encoder.Config{})
	clk := vclock.NewVirtual()
	pl := New(Options{Realtime: true, Clock: clk})

	// Release the stream so slowly that items arrive after their PTS.
	src := &slowReader{
		data: data, clk: clk,
		chunk:   len(data) / 8,
		perWait: 600 * time.Millisecond, // 8 chunks × 600 ms ≫ 2 s lecture
	}
	done := make(chan struct{})
	var m *Metrics
	go func() {
		defer close(done)
		m, _ = pl.Play(src)
	}()
	driveClock(t, clk, done)
	if m == nil {
		t.Fatal("no metrics")
	}
	if m.Stalls == 0 {
		t.Fatal("starved source produced no stalls")
	}
	if m.StallTime == 0 {
		t.Fatal("stall time not accumulated")
	}
}

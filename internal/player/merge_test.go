package player

import (
	"testing"
	"time"
)

func TestMetricsLastPTS(t *testing.T) {
	m := &Metrics{}
	if got := m.LastPTS(); got != 0 {
		t.Fatalf("empty LastPTS = %v", got)
	}
	m.Events = []Event{
		{Kind: EventVideoFrame, PTS: 100 * time.Millisecond},
		{Kind: EventAudioBlock, PTS: 260 * time.Millisecond},
		{Kind: EventVideoFrame, PTS: 200 * time.Millisecond},
		// Non-media events never define the resume point.
		{Kind: EventSlideShown, PTS: 900 * time.Millisecond},
		{Kind: EventStall, PTS: 800 * time.Millisecond},
	}
	if got := m.LastPTS(); got != 260*time.Millisecond {
		t.Fatalf("LastPTS = %v, want 260ms", got)
	}
}

func TestMetricsMerge(t *testing.T) {
	a := &Metrics{
		Events: []Event{
			{Kind: EventVideoFrame, PTS: 10 * time.Millisecond, At: 20 * time.Millisecond},
			{Kind: EventStall, PTS: 30 * time.Millisecond, At: 90 * time.Millisecond},
		},
		VideoFrames: 1, Stalls: 1, StallTime: 60 * time.Millisecond,
		BytesRead: 1000, Duration: 500 * time.Millisecond,
		SlidesShown: 1, Decodable: 1,
		FinalURL: "http://edge-1/vod/lec",
	}
	b := &Metrics{
		Events: []Event{
			{Kind: EventVideoFrame, PTS: 40 * time.Millisecond, At: 80 * time.Millisecond},
			{Kind: EventAudioBlock, PTS: 50 * time.Millisecond, At: 50 * time.Millisecond},
		},
		VideoFrames: 1, AudioBlocks: 1,
		BytesRead: 2000, Duration: 700 * time.Millisecond,
		BrokenFrames: 2,
		FinalURL:     "http://edge-2/vod/lec",
	}
	a.Merge(b)

	if a.VideoFrames != 2 || a.AudioBlocks != 1 || a.SlidesShown != 1 {
		t.Fatalf("counters = %d/%d/%d", a.VideoFrames, a.AudioBlocks, a.SlidesShown)
	}
	if a.BytesRead != 3000 || a.Duration != 1200*time.Millisecond {
		t.Fatalf("bytes/duration = %d/%v", a.BytesRead, a.Duration)
	}
	if a.Stalls != 1 || a.StallTime != 60*time.Millisecond {
		t.Fatalf("stalls = %d/%v", a.Stalls, a.StallTime)
	}
	if a.Decodable != 1 || a.BrokenFrames != 2 {
		t.Fatalf("decode = %d/%d", a.Decodable, a.BrokenFrames)
	}
	if a.FinalURL != "http://edge-2/vod/lec" {
		t.Fatalf("FinalURL = %q, want the resumed segment's edge", a.FinalURL)
	}
	if len(a.Events) != 4 {
		t.Fatalf("events = %d", len(a.Events))
	}
	// Skews recomputed over the merged, non-stall events:
	// 10ms, 40ms, 0ms → max 40ms, mean 50/3 ms.
	if a.MaxSkew != 40*time.Millisecond {
		t.Fatalf("MaxSkew = %v", a.MaxSkew)
	}
	if want := 50 * time.Millisecond / 3; a.MeanSkew != want {
		t.Fatalf("MeanSkew = %v, want %v", a.MeanSkew, want)
	}

	// Merging nil is a no-op.
	before := *a
	a.Merge(nil)
	if a.VideoFrames != before.VideoFrames || len(a.Events) != len(before.Events) {
		t.Fatal("Merge(nil) changed the metrics")
	}
}

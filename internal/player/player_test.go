package player

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/encoder"
	"repro/internal/streaming"
)

func testLectureBytes(t *testing.T, dur time.Duration, cfg encoder.Config) ([]byte, *capture.Lecture) {
	t.Helper()
	p, err := codec.ByName("modem-56k")
	if err != nil {
		t.Fatal(err)
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "player test", Duration: dur, Profile: p, SlideCount: 3,
		AnnotationEvery: dur / 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, cfg, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), lec
}

func TestPlayStoredLecture(t *testing.T) {
	data, lec := testLectureBytes(t, 3*time.Second, encoder.Config{})
	pl := New(Options{}) // arrival-order playback
	m, err := pl.Play(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if m.VideoFrames != len(lec.Video) {
		t.Errorf("video frames = %d, want %d", m.VideoFrames, len(lec.Video))
	}
	if m.AudioBlocks != len(lec.Audio) {
		t.Errorf("audio blocks = %d, want %d", m.AudioBlocks, len(lec.Audio))
	}
	if m.SlidesShown != 3 {
		t.Errorf("slides shown = %d, want 3", m.SlidesShown)
	}
	if m.Annotations != 1 {
		t.Errorf("annotations = %d, want 1", m.Annotations)
	}
	if m.Decodable != len(lec.Video) || m.BrokenFrames != 0 {
		t.Errorf("decodable = %d broken = %d", m.Decodable, m.BrokenFrames)
	}
	if m.BytesRead == 0 {
		t.Error("no bytes accounted")
	}
}

func TestSlideFlipOrderMatchesLecture(t *testing.T) {
	data, lec := testLectureBytes(t, 3*time.Second, encoder.Config{})
	pl := New(Options{})
	m, err := pl.Play(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	flips := m.SlideEvents()
	if len(flips) != len(lec.Slides) {
		t.Fatalf("flips = %d, want %d", len(flips), len(lec.Slides))
	}
	for i, f := range flips {
		if f.Param != lec.Slides[i].Name {
			t.Errorf("flip %d shows %q, want %q", i, f.Param, lec.Slides[i].Name)
		}
		if f.PTS != lec.Slides[i].At {
			t.Errorf("flip %d at PTS %v, want %v", i, f.PTS, lec.Slides[i].At)
		}
	}
}

func TestDRMEnforcement(t *testing.T) {
	p, err := codec.ByName("modem-56k")
	if err != nil {
		t.Fatal(err)
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "drm", Duration: time.Second, Profile: p, SlideCount: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{DRM: true}, &buf); err != nil {
		t.Fatal(err)
	}
	pl := New(Options{})
	if _, err := pl.Play(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrDRMNotLicensed) {
		t.Fatalf("unlicensed play = %v, want ErrDRMNotLicensed", err)
	}
	licensed := New(Options{LicenseDRM: true})
	if _, err := licensed.Play(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("licensed play failed: %v", err)
	}
}

func TestIgnoreHeaderScriptsAblation(t *testing.T) {
	// Stored encode puts scripts only in the header; ignoring the header
	// table must lose all slide flips.
	data, _ := testLectureBytes(t, 2*time.Second, encoder.Config{})
	pl := New(Options{IgnoreHeaderScripts: true})
	m, err := pl.Play(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if m.SlidesShown != 0 {
		t.Fatalf("header-script-blind player showed %d slides", m.SlidesShown)
	}

	// A live encode carries scripts in-band, surviving the ablation.
	liveData, lec := testLectureBytes(t, 2*time.Second, encoder.Config{Live: true})
	m2, err := pl.Play(bytes.NewReader(liveData))
	if err != nil {
		t.Fatal(err)
	}
	if m2.SlidesShown != len(lec.Slides) {
		t.Fatalf("in-band slides shown = %d, want %d", m2.SlidesShown, len(lec.Slides))
	}
}

func TestPlayURLOverHTTP(t *testing.T) {
	data, lec := testLectureBytes(t, 2*time.Second, encoder.Config{})
	srv := streaming.NewServer(nil)
	srv.Pacing = false
	if _, err := srv.RegisterAsset("lec", asf.NewReader(bytes.NewReader(data))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pl := New(Options{})
	m, err := pl.PlayURL(context.Background(), ts.URL+"/vod/lec")
	if err != nil {
		t.Fatal(err)
	}
	if m.VideoFrames != len(lec.Video) {
		t.Fatalf("video frames over HTTP = %d, want %d", m.VideoFrames, len(lec.Video))
	}
	if m.SlidesShown != len(lec.Slides) {
		t.Fatalf("slides over HTTP = %d, want %d", m.SlidesShown, len(lec.Slides))
	}
}

// TestPlayURLCancellation proves the fetch is abortable mid-stream: the
// server sends a valid header then blocks forever, and cancelling the
// context must unblock PlayURL with the context error instead of
// leaving it waiting on a read that will never return.
func TestPlayURLCancellation(t *testing.T) {
	data, _ := testLectureBytes(t, 2*time.Second, encoder.Config{})
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A taste of real bytes so the player is mid-read, then stall.
		_, _ = w.Write(data[:64])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-release
	}))
	defer ts.Close()
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := New(Options{}).PlayURL(ctx, ts.URL+"/vod/lec")
		done <- err
	}()

	time.Sleep(50 * time.Millisecond) // let the fetch reach the stalled body
	cancel()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("PlayURL returned nil error after cancellation")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("PlayURL error = %v, want context.Canceled in chain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PlayURL did not return within 5s of cancellation: in-flight fetch is not abortable")
	}
}

func TestPlayURLErrors(t *testing.T) {
	srv := streaming.NewServer(nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	pl := New(Options{})
	if _, err := pl.PlayURL(context.Background(), ts.URL+"/vod/none"); err == nil {
		t.Fatal("404 accepted")
	}
	if _, err := pl.PlayURL(context.Background(), "http://127.0.0.1:1/nope"); err == nil {
		t.Fatal("connection error accepted")
	}
}

func TestJitterBufferDepthConsumesAll(t *testing.T) {
	data, lec := testLectureBytes(t, 2*time.Second, encoder.Config{})
	for _, depth := range []int{0, 1, 16, 10_000} {
		pl := New(Options{JitterBufferDepth: depth})
		m, err := pl.Play(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if m.VideoFrames != len(lec.Video) {
			t.Fatalf("depth %d: video frames = %d, want %d", depth, m.VideoFrames, len(lec.Video))
		}
	}
}

func TestEventKindString(t *testing.T) {
	if EventSlideShown.String() != "slide" || EventStall.String() != "stall" {
		t.Fatal("event names wrong")
	}
	if got := EventKind(42).String(); got != "event(42)" {
		t.Fatalf("unknown = %q", got)
	}
}

func TestSkewHelpers(t *testing.T) {
	e := Event{PTS: time.Second, At: 1200 * time.Millisecond}
	if e.Skew() != 200*time.Millisecond {
		t.Fatalf("Skew = %v", e.Skew())
	}
	m := &Metrics{MaxSkew: 50 * time.Millisecond}
	if !m.SkewWithin(80 * time.Millisecond) {
		t.Fatal("SkewWithin false negative")
	}
	if m.SkewWithin(10 * time.Millisecond) {
		t.Fatal("SkewWithin false positive")
	}
}

func TestPlayTruncatedStreamReturnsError(t *testing.T) {
	data, _ := testLectureBytes(t, time.Second, encoder.Config{})
	pl := New(Options{})
	// Cut mid-packet (not at a boundary): the player must surface an error
	// or a clean EOF, never panic.
	_, err := pl.Play(bytes.NewReader(data[:len(data)*2/3]))
	_ = err // both nil (clean cut) and error (mid-packet) are acceptable
}

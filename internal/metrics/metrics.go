// Package metrics is the observability layer of the Lecture-on-Demand
// system: a dependency-free registry of atomically updated counters,
// gauges, and histograms, exposed in Prometheus text format at
// GET /metrics and as a flat JSON snapshot at GET /status.
//
// Every serving tier owns one Registry — streaming.Server and
// relay.Registry each create theirs, relay.Edge shares its server's —
// and instruments are created once with get-or-create semantics:
//
//	reg := metrics.NewRegistry()
//	hits := reg.Counter("lod_edge_cache_hits_total",
//	    "Mirrored-asset demands served from the edge cache.")
//	hits.Inc()
//
// Series are distinguished by constant labels supplied at creation
// (e.g. one lod_request_seconds histogram per endpoint). Updates are
// lock-free (a single atomic op for counters and gauges, one per bucket
// plus a CAS loop for histogram sums), so instruments may be hammered
// from every session goroutine without contending on the registry.
//
// The package deliberately implements the small subset of the
// Prometheus exposition format the system needs; it is not a
// client_golang replacement.
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one constant name=value pair attached to a series at
// creation time.
type Label struct {
	Key   string
	Value string
}

// DefBuckets are the default histogram bucket upper bounds in seconds,
// spanning sub-millisecond handler latencies up to minutes-long
// streaming sessions.
var DefBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10, 30, 60, 300}

type kind int

const (
	counterKind kind = iota
	gaugeKind
	gaugeFuncKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind, gaugeFuncKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "untyped"
}

// Registry holds a process's metric families and renders them for the
// /metrics and /status endpoints. The zero value is not usable; create
// with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// family groups every series sharing one metric name (and therefore one
// type and help string).
type family struct {
	name    string
	help    string
	kind    kind
	buckets []float64 // histogram families only

	series map[string]*series
	order  []string
}

// series is one labeled instrument within a family.
type series struct {
	labels []Label

	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	histogram *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// lookup returns the family/series for name+labels, creating either as
// needed. It panics on an invalid name or a name reused with a
// different kind — both programmer errors caught on first scrape or
// first update in any test.
func (r *Registry) lookup(name, help string, k kind, buckets []float64, labels []Label) *series {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, k))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...)}
		switch k {
		case counterKind:
			s.counter = &Counter{}
		case gaugeKind:
			s.gauge = &Gauge{}
		case histogramKind:
			s.histogram = newHistogram(f.buckets)
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns the monotonically increasing counter for name+labels,
// creating it on first use. Reusing a name with a different instrument
// kind panics.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, counterKind, nil, labels).counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, gaugeKind, nil, labels).gauge
}

// GaugeFunc registers fn as the value of the gauge series name+labels,
// evaluated at scrape time. Re-registering the same series replaces the
// function (so a component can refresh its closure after a restart).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, gaugeFuncKind, nil, labels)
	r.mu.Lock()
	s.gaugeFn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram for name+labels, creating it on first
// use with the given bucket upper bounds (nil means DefBuckets). The
// bounds of the first creation win for the whole family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.lookup(name, help, histogramKind, buckets, labels).histogram
}

// Counter is a monotonically increasing value, updated with one atomic
// add.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n is ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down, updated atomically.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets, tracking the total
// sum and count. Observations are lock-free.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Int64
	sum    atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the seconds elapsed since t0 on the wall clock —
// the idiom for latency histograms.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// atomicFloat is a float64 updated with a CAS loop over its bit
// pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// labelKey renders labels into the canonical {k="v",...} form used both
// as the series map key and in the exposition output. Labels keep their
// creation order; an empty set renders as "".
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

package metrics

import (
	"sync"
	"testing"
)

func TestSnapshotDelta(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("work_total", "Work done.")
	g := reg.Gauge("inflight", "In flight.")
	h := reg.Histogram("latency_seconds", "Latency.", nil)

	c.Add(3)
	g.Set(5)
	h.Observe(0.2)
	before := reg.Snapshot()

	c.Add(4)
	g.Set(2)
	h.Observe(0.3)
	h.Observe(0.5)
	// A series created inside the window must delta from zero.
	reg.Counter("late_total", "Created mid-window.").Add(7)

	d := reg.Snapshot().Delta(before)
	if got := d.Get("work_total"); got != 4 {
		t.Errorf("counter delta = %v, want 4", got)
	}
	if got := d.Get("inflight"); got != -3 {
		t.Errorf("gauge delta = %v, want -3", got)
	}
	if got := d.Get("latency_seconds_count"); got != 2 {
		t.Errorf("histogram count delta = %v, want 2", got)
	}
	if got := d.Get("latency_seconds_sum"); got < 0.79 || got > 0.81 {
		t.Errorf("histogram sum delta = %v, want 0.8", got)
	}
	if got := d.Get("late_total"); got != 7 {
		t.Errorf("mid-window series delta = %v, want 7", got)
	}
	if got := d.Get("never_created_total"); got != 0 {
		t.Errorf("missing series = %v, want 0", got)
	}
}

func TestSnapshotSum(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sessions_total", "By kind.", Label{Key: "kind", Value: "vod"}).Add(3)
	reg.Counter("sessions_total", "By kind.", Label{Key: "kind", Value: "live"}).Add(2)
	reg.Counter("sessions_other", "Unrelated.").Add(100)
	s := reg.Snapshot()
	if got := s.Sum("sessions_total"); got != 5 {
		t.Errorf("Sum(sessions_total) = %v, want 5", got)
	}
	if got := s.Sum("sessions_total{"); got != 5 {
		t.Errorf("Sum(sessions_total{) = %v, want 5", got)
	}
	if got := s.Sum("nope"); got != 0 {
		t.Errorf("Sum(nope) = %v, want 0", got)
	}
}

// TestSnapshotConcurrent hammers instruments while snapshotting; run
// under -race (make race covers this package) to prove snapshot reads
// never race with lock-free updates.
func TestSnapshotConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hits_total", "Hits.")
	h := reg.Histogram("obs_seconds", "Obs.", nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.01)
				}
			}
		}()
	}
	var last Snapshot
	for i := 0; i < 50; i++ {
		cur := reg.Snapshot()
		if last != nil {
			d := cur.Delta(last)
			if d.Get("hits_total") < 0 {
				t.Fatal("counter went backwards")
			}
		}
		last = cur
	}
	close(stop)
	wg.Wait()
}

package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := reg.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestGetOrCreateReturnsSameInstrument(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("hits_total", "h", Label{"endpoint", "vod"})
	b := reg.Counter("hits_total", "h", Label{"endpoint", "vod"})
	if a != b {
		t.Fatal("same name+labels produced distinct counters")
	}
	other := reg.Counter("hits_total", "h", Label{"endpoint", "live"})
	if a == other {
		t.Fatal("distinct labels share one counter")
	}
	a.Inc()
	if b.Value() != 1 || other.Value() != 0 {
		t.Fatalf("values: same=%d other=%d", b.Value(), other.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("reusing a counter name as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total", "x")
}

func TestInvalidNamePanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	reg.Counter("bad name", "nope")
}

func TestHistogramObservations(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, line := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(text, line) {
			t.Fatalf("exposition missing %q:\n%s", line, text)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total", "Requests served.", Label{"endpoint", "vod"}).Add(3)
	reg.Gauge("active", "Active sessions.").Set(2)
	reg.GaugeFunc("age_seconds", "Heartbeat age.", func() float64 { return 1.5 }, Label{"node", `e"1`})

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, line := range []string{
		"# HELP requests_total Requests served.",
		"# TYPE requests_total counter",
		`requests_total{endpoint="vod"} 3`,
		"# TYPE active gauge",
		"active 2",
		"# TYPE age_seconds gauge",
		`age_seconds{node="e\"1"} 1.5`,
	} {
		if !strings.Contains(text, line) {
			t.Fatalf("exposition missing %q:\n%s", line, text)
		}
	}
}

func TestGaugeFuncReplace(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("v", "", func() float64 { return 1 })
	reg.GaugeFunc("v", "", func() float64 { return 2 })
	if got := reg.Status()["v"]; got != 2 {
		t.Fatalf("gauge func = %v, want the replacement value 2", got)
	}
}

func TestStatusAndHTTPEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", "", Label{"endpoint", "vod"}).Add(7)
	reg.Histogram("lat_seconds", "", []float64{1}).Observe(0.5)

	mux := http.NewServeMux()
	reg.Expose(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status[`hits_total{endpoint="vod"}`] != 7 {
		t.Fatalf("status = %v", status)
	}
	if status["lat_seconds_count"] != 1 || status["lat_seconds_sum"] != 0.5 {
		t.Fatalf("status histogram entries = %v", status)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `hits_total{endpoint="vod"} 7`) {
		t.Fatalf("metrics body:\n%s", body)
	}
}

// TestConcurrentUpdates hammers every instrument kind from many
// goroutines while scraping, so `go test -race` proves the lock-free
// update paths. The final counts must also be exact — no lost updates.
func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Instruments are fetched inside the goroutine: get-or-create
			// must be safe under contention too.
			c := reg.Counter("ops_total", "")
			g := reg.Gauge("depth", "")
			h := reg.Histogram("lat_seconds", "", []float64{0.25, 0.75})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
				h.Observe(0.5)
			}
		}()
	}
	// Concurrent scrapes of both renderings.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = reg.WritePrometheus(io.Discard)
				_ = reg.Status()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("ops_total", "").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("depth", "").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	h := reg.Histogram("lat_seconds", "", nil)
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

package metrics

// Snapshot is a point-in-time reading of every series in a Registry,
// keyed by name{labels} exactly as /status renders them (histograms
// contribute their _count and _sum). Snapshots are plain values: take
// one before and one after a workload and Delta them to isolate what
// the workload did — the measurement idiom of internal/loadgen.
type Snapshot map[string]float64

// Snapshot captures the current value of every series. It is
// equivalent to Status; the named return type carries the diffing
// helpers.
func (r *Registry) Snapshot() Snapshot {
	return Snapshot(r.Status())
}

// Delta returns s minus base, series by series. Series missing from
// base count from zero (they were created during the window); series
// present only in base are omitted (a Registry never drops series, so
// that only happens when diffing unrelated registries). Counter and
// histogram deltas are the activity within the window; gauge deltas
// are net change, which can be negative.
func (s Snapshot) Delta(base Snapshot) Snapshot {
	out := make(Snapshot, len(s))
	for k, v := range s {
		out[k] = v - base[k]
	}
	return out
}

// Get returns the value of one series, or 0 when the series does not
// exist — convenient for series that may legitimately never have been
// created (e.g. an eviction counter on an unbounded cache).
func (s Snapshot) Get(key string) float64 { return s[key] }

// Sum adds the values of every series whose key starts with prefix —
// the way to fold a labeled family (for example every
// lod_sessions_started_total{kind=...} series) into one number.
func (s Snapshot) Sum(prefix string) float64 {
	var total float64
	for k, v := range s {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			total += v
		}
	}
	return total
}

package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/proto"
)

// WritePrometheus renders every family in registration order in the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		if f.help != "" {
			bw.WriteString("# HELP " + f.name + " " + strings.ReplaceAll(f.help, "\n", " ") + "\n")
		}
		bw.WriteString("# TYPE " + f.name + " " + f.kind.String() + "\n")
		for _, key := range f.order {
			s := f.series[key]
			switch f.kind {
			case counterKind:
				writeLine(bw, f.name, key, formatInt(s.counter.Value()))
			case gaugeKind:
				writeLine(bw, f.name, key, formatInt(s.gauge.Value()))
			case gaugeFuncKind:
				writeLine(bw, f.name, key, formatFloat(s.gaugeFn()))
			case histogramKind:
				writeHistogram(bw, f.name, s)
			}
		}
	}
	return bw.Flush()
}

func writeLine(w *bufio.Writer, name, labelKey, value string) {
	w.WriteString(name)
	w.WriteString(labelKey)
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// writeHistogram emits the cumulative _bucket series plus _sum and
// _count, merging the le label into the series' own labels.
func writeHistogram(w *bufio.Writer, name string, s *series) {
	h := s.histogram
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeLine(w, name+"_bucket", mergeLE(s.labels, formatFloat(bound)), formatInt(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeLine(w, name+"_bucket", mergeLE(s.labels, "+Inf"), formatInt(cum))
	writeLine(w, name+"_sum", labelKey(s.labels), formatFloat(h.Sum()))
	writeLine(w, name+"_count", labelKey(s.labels), formatInt(h.Count()))
}

func mergeLE(labels []Label, le string) string {
	merged := make([]Label, 0, len(labels)+1)
	merged = append(merged, labels...)
	merged = append(merged, Label{"le", le})
	return labelKey(merged)
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Status returns a flat snapshot of every series, keyed by
// name{labels}. Histograms contribute their _count and _sum; bucket
// detail stays on /metrics.
func (r *Registry) Status() map[string]float64 {
	out := make(map[string]float64)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		for _, key := range f.order {
			s := f.series[key]
			switch f.kind {
			case counterKind:
				out[f.name+key] = float64(s.counter.Value())
			case gaugeKind:
				out[f.name+key] = float64(s.gauge.Value())
			case gaugeFuncKind:
				out[f.name+key] = s.gaugeFn()
			case histogramKind:
				out[f.name+"_count"+key] = float64(s.histogram.Count())
				out[f.name+"_sum"+key] = s.histogram.Sum()
			}
		}
	}
	return out
}

// ServeHTTP serves the Prometheus text exposition, so a Registry can be
// mounted directly: mux.Handle("/metrics", reg).
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}

// StatusHandler returns the JSON snapshot endpoint for GET /status.
func (r *Registry) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r.Status()); err != nil {
			proto.WriteError(w, http.StatusInternalServerError, err.Error())
		}
	})
}

// Expose mounts GET /metrics (Prometheus text) and GET /status (JSON
// snapshot) on mux — the two observability endpoints every lodserver
// role serves — under both the legacy paths and their /v1 aliases
// (proto.PathMetrics/PathStatus).
func (r *Registry) Expose(mux *http.ServeMux) {
	proto.Handle(mux, proto.PathMetrics, r)
	proto.Handle(mux, proto.PathStatus, r.StatusHandler())
}

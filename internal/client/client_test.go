package client

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/encoder"
	"repro/internal/proto"
	"repro/internal/relay"
	"repro/internal/streaming"
)

func encodeTestLecture(t *testing.T, dur time.Duration) []byte {
	t.Helper()
	p, err := codec.ByName("modem-56k")
	if err != nil {
		t.Fatal(err)
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "sdk test", Duration: dur, Profile: p, SlideCount: 2, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{}, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// cluster is a minimal real-HTTP cluster: one origin asset, two edges
// pulling through, a registry redirecting between them.
type cluster struct {
	origin   *streaming.Server
	registry *relay.Registry
	regTS    *httptest.Server
	edgeTS   []*httptest.Server
}

func newCluster(t *testing.T, asset string) *cluster {
	t.Helper()
	c := &cluster{origin: streaming.NewServer(nil), registry: relay.NewRegistry(nil)}
	c.origin.Pacing = false
	data := encodeTestLecture(t, 2*time.Second)
	if _, err := c.origin.RegisterAsset(asset, asf.NewReader(bytes.NewReader(data))); err != nil {
		t.Fatal(err)
	}
	originTS := httptest.NewServer(c.origin.Handler())
	t.Cleanup(originTS.Close)
	for i, id := range []string{"edge-a", "edge-b"} {
		srv := streaming.NewServer(nil)
		srv.Pacing = false
		ts := httptest.NewServer(relay.NewEdge(originTS.URL, srv).Handler())
		t.Cleanup(ts.Close)
		c.edgeTS = append(c.edgeTS, ts)
		if err := c.registry.Register(relay.NodeInfo{ID: id, URL: ts.URL}); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	c.regTS = httptest.NewServer(c.registry.Handler())
	t.Cleanup(c.regTS.Close)
	return c
}

func TestSpecTarget(t *testing.T) {
	for _, tc := range []struct {
		spec Spec
		want string
	}{
		{Spec{Kind: VOD, Name: "lec-1"}, "/v1/vod/lec-1"},
		{Spec{Kind: VOD, Name: "lec-1", Start: 1500 * time.Millisecond}, "/v1/vod/lec-1?start=1500ms"},
		{Spec{Kind: Group, Name: "g", Bandwidth: 768000}, "/v1/group/g?bw=768000"},
		{Spec{Kind: Live, Name: "class"}, "/v1/live/class"},
		{Spec{Kind: VOD, Name: "week 1/intro"}, "/v1/vod/week%201%2Fintro"},
	} {
		if got := tc.spec.Target(); got != tc.want {
			t.Errorf("Target(%+v) = %q, want %q", tc.spec, got, tc.want)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	cl := New("http://registry")
	ctx := context.Background()
	for _, spec := range []Spec{
		{},                         // no kind
		{Kind: VOD},                // no name
		{Kind: "fetch", Name: "a"}, // mirror path, not a viewer stream
		{Kind: "bogus", Name: "a"}, // unknown kind
		{Kind: VOD, Name: "a", Start: -time.Second},
		{Kind: Live, Name: "a", Start: time.Second}, // live has no seek
		{Kind: VOD, Name: "a", Bandwidth: 1},        // bw is a group knob
		{Kind: Group, Name: "a", Bandwidth: -1},
		{Kind: VOD, Name: "a", Failover: -1},
	} {
		if _, err := cl.Open(ctx, spec); err == nil {
			t.Errorf("Open(%+v) accepted", spec)
		}
	}
	if _, err := cl.Open(ctx, Spec{Kind: VOD, Name: "a"}); err != nil {
		t.Errorf("minimal spec rejected: %v", err)
	}
}

// TestPlayThroughCluster is the SDK happy path: a VOD spec resolved
// through the registry's /v1 redirect, mirrored onto an edge, played to
// completion, with the serving edge reported in Stats.
func TestPlayThroughCluster(t *testing.T) {
	c := newCluster(t, "lec")
	cl := New(c.regTS.URL)
	sess, err := cl.Open(context.Background(), Spec{Kind: VOD, Name: "lec"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sess.Play()
	if err != nil {
		t.Fatal(err)
	}
	if m.SlidesShown != 2 || m.BrokenFrames != 0 || m.BytesRead == 0 {
		t.Fatalf("metrics = %+v", m)
	}
	st := sess.Stats()
	if st.Edge == "" || st.Failovers != 0 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want a clean run with a serving edge", st)
	}
	// No viewer session ever reached the origin directly.
	if got := c.origin.Stats().VODSessions; got != 0 {
		t.Fatalf("origin VOD sessions = %d, want 0 (mirror only)", got)
	}
}

// TestEscapedNameEndToEnd is the client half of the escaping bugfix: an
// asset whose name carries spaces, a slash, a percent sign, and query
// metacharacters must round-trip registry→edge→origin through the SDK,
// byte-identical to a direct play. Before proto.StreamPath, loadgen
// built this path by concatenation and the request shattered.
func TestEscapedNameEndToEnd(t *testing.T) {
	const name = "week 1/lec 50% ?&#"
	c := newCluster(t, name)
	cl := New(c.regTS.URL)
	sess, err := cl.Open(context.Background(), Spec{Kind: VOD, Name: name})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sess.Target(), "week%201%2Flec%2050%25%20%3F&%23") {
		t.Fatalf("target not escaped: %q", sess.Target())
	}
	m, err := sess.Play()
	if err != nil {
		t.Fatal(err)
	}
	if m.SlidesShown != 2 || m.BytesRead == 0 {
		t.Fatalf("escaped-name play metrics = %+v", m)
	}
	// The edge mirrored it under the decoded name.
	mirrored := false
	for _, ts := range c.edgeTS {
		resp, err := http.Get(ts.URL + proto.Versioned(proto.PathAssets))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), "week 1/lec 50%") {
			mirrored = true
		}
	}
	if !mirrored {
		t.Fatal("no edge lists the escaped-name asset under its decoded name")
	}
}

// TestSeekSpecPlaysTail: a Start offset reaches the server and strictly
// fewer bytes come back.
func TestSeekSpecPlaysTail(t *testing.T) {
	c := newCluster(t, "lec")
	cl := New(c.regTS.URL)
	full, err := cl.Open(context.Background(), Spec{Kind: VOD, Name: "lec"})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := full.Play()
	if err != nil {
		t.Fatal(err)
	}
	seeked, err := cl.Open(context.Background(), Spec{Kind: VOD, Name: "lec", Start: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := seeked.Play()
	if err != nil {
		t.Fatal(err)
	}
	if sm.BytesRead >= fm.BytesRead {
		t.Fatalf("seeked read %d bytes, full read %d", sm.BytesRead, fm.BytesRead)
	}
}

// TestFetchRawPackets covers the packet-read half of the Session
// interface: the raw container body parses as header + packets + index.
func TestFetchRawPackets(t *testing.T) {
	c := newCluster(t, "lec")
	cl := New(c.regTS.URL)
	sess, err := cl.Open(context.Background(), Spec{Kind: VOD, Name: "lec"})
	if err != nil {
		t.Fatal(err)
	}
	body, err := sess.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	defer body.Close()
	r := asf.NewReader(body)
	if _, err := r.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	packets := 0
	for {
		if _, err := r.ReadPacket(); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		packets++
	}
	if packets == 0 {
		t.Fatal("raw fetch returned no packets")
	}
	if st := sess.Stats(); st.Edge == "" {
		t.Fatalf("stats after fetch = %+v, want the serving edge", st)
	}
}

// TestFailsOverToLiveEdge: the preferred edge is a corpse; the session
// must escape it, report it dead, and complete on the live one, with
// the failover visible in Stats.
func TestFailsOverToLiveEdge(t *testing.T) {
	c := newCluster(t, "lec")
	// Kill whichever edge the consistent-hash ring prefers for the
	// asset, so the registry's first redirect hands the client a corpse
	// (the registry doesn't know yet — nothing reported the death).
	preferred, err := c.registry.PickFor(proto.StreamPath(proto.StreamVOD, "lec"))
	if err != nil {
		t.Fatal(err)
	}
	var deadURL string
	for i, id := range []string{"edge-a", "edge-b"} {
		if id == preferred.ID {
			deadURL = c.edgeTS[i].URL
			c.edgeTS[i].Close()
		}
	}
	cl := New(c.regTS.URL, WithBackoff(5*time.Millisecond))
	sess, err := cl.Open(context.Background(), Spec{Kind: VOD, Name: "lec", Failover: 3})
	if err != nil {
		t.Fatal(err)
	}
	var retried []string
	sessSpec := sess.(*session)
	sessSpec.spec.OnRetry = func(edge string, err error) { retried = append(retried, edge) }
	m, err := sess.Play()
	if err != nil {
		t.Fatalf("session died despite failover budget: %v", err)
	}
	if m.SlidesShown != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	st := sess.Stats()
	if st.Failovers < 1 || st.Retries < 1 {
		t.Fatalf("stats = %+v, want at least one failover", st)
	}
	if strings.Contains(deadURL, st.Edge) {
		t.Fatalf("final edge %q is the corpse", st.Edge)
	}
	if len(retried) < 1 {
		t.Fatal("OnRetry never observed the failure")
	}
	// The corpse was reported: the registry marks it dead for everyone.
	for _, n := range c.registry.Nodes() {
		if n.ID == preferred.ID && n.Health != proto.HealthDead {
			t.Fatalf("%s health = %q, want dead", preferred.ID, n.Health)
		}
	}
}

// TestNodesListsHealth covers the registry control plane through the
// SDK: per-node health labels and heartbeat ages, including a draining
// node.
func TestNodesListsHealth(t *testing.T) {
	c := newCluster(t, "lec")
	if !c.registry.Deregister("edge-b") {
		t.Fatal("deregister failed")
	}
	cl := New(c.regTS.URL)
	nodes, err := cl.Nodes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Fatalf("nodes = %+v, want 2", nodes)
	}
	byID := map[string]proto.NodeStatus{}
	for _, n := range nodes {
		byID[n.ID] = n
		if n.HeartbeatAgeSec < 0 || n.HeartbeatAgeSec > 60 {
			t.Fatalf("implausible heartbeat age: %+v", n)
		}
	}
	if byID["edge-a"].Health != proto.HealthAlive {
		t.Fatalf("edge-a = %+v, want alive", byID["edge-a"])
	}
	if byID["edge-b"].Health != proto.HealthDraining || byID["edge-b"].Alive {
		t.Fatalf("edge-b = %+v, want draining", byID["edge-b"])
	}
}

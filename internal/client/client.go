// Package client is the Lecture-on-Demand session SDK: the one way
// every consumer — loadgen's virtual clients, cmd/lodplay, integration
// tests, the next workload someone invents — opens a stream through a
// cluster registry.
//
// A Client is configured once per registry and is safe for concurrent
// use; each Open returns a single-use Session:
//
//	cl := client.New("http://registry:9090")
//	sess, err := cl.Open(ctx, client.Spec{
//		Kind:     client.VOD,
//		Name:     "lecture 1",
//		Start:    30 * time.Second,
//		Failover: 3,
//	})
//	m, err := sess.Play()          // scripted playback, failover inside
//	st := sess.Stats()             // edge served, failovers, retries
//
// Under the hood a session runs the shared relay machinery — a
// relay.StreamFetcher resolving the registry's 307 by hand (so failed
// edges are nameable, reportable, and excludable) and a
// relay.FailoverSession resuming stored streams at the last received
// offset — so retry/resume/report behaviour exists exactly once. Paths,
// query parameters, and headers all come from internal/proto; the SDK
// always speaks the versioned /v1 form of the contract, and names are
// percent-encoded by construction (an asset called "week 1/intro" just
// works — no caller ever concatenates a route literal again).
package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/player"
	"repro/internal/proto"
)

// Re-exported stream kinds, so callers spell client.VOD rather than
// importing proto alongside the SDK. (proto.StreamFetch is the relay
// tier's mirror path, not a viewer stream, and has no alias here.)
const (
	VOD   = proto.StreamVOD
	Live  = proto.StreamLive
	Group = proto.StreamGroup
)

// Client opens sessions through one cluster registry. It carries only
// configuration and is safe for concurrent use; per-stream state lives
// on the Session.
type Client struct {
	registry string
	http     *http.Client
	backoff  time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient supplies the transport for registry and edge requests
// (loadgen passes its in-process MemNet client). Nil keeps
// http.DefaultClient.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) {
		if h != nil {
			c.http = h
		}
	}
}

// WithBackoff sets the base of the bounded exponential delay between
// failover attempts (relay.FailoverBackoff); zero keeps the 50ms
// default.
func WithBackoff(base time.Duration) Option {
	return func(c *Client) { c.backoff = base }
}

// New creates a client resolving streams through the registry at
// registryURL (scheme://host, no trailing slash needed).
func New(registryURL string, opts ...Option) *Client {
	c := &Client{
		registry: strings.TrimSuffix(registryURL, "/"),
		http:     http.DefaultClient,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Registry returns the registry base URL the client resolves through.
func (c *Client) Registry() string { return c.registry }

// Spec names one stream to open. Zero values mean "not set": a VOD
// spec with Start 0 plays from the top, a Group spec with Bandwidth 0
// receives the richest variant.
type Spec struct {
	// Kind selects the route family: VOD, Live, or Group.
	Kind proto.StreamKind
	// Name is the raw asset/channel/group name; the SDK percent-encodes
	// it into the path.
	Name string
	// Start seeks a stored stream (VOD or Group) to a presentation
	// offset. Failover resume never rewinds earlier than it.
	Start time.Duration
	// Bandwidth declares the client's link bandwidth in bits/s on a
	// Group request; the server streams the richest variant that fits.
	Bandwidth int64
	// Failover is how many extra registry round trips the session makes
	// after an edge refuses its connection, answers 5xx, or severs the
	// stream mid-play; zero means the first failure ends the session.
	Failover int

	// Player configures scripted playback (Session.Play).
	Player player.Options
	// WrapBody, when set, wraps each attempt's response body before it
	// reaches the player — loadgen's link shaping and first-byte stamp.
	WrapBody func(r io.Reader) io.Reader
	// OnRetry, when set, observes each failure that will be retried:
	// edge names the failed edge host, empty when the registry leg
	// failed. The session counts failovers and retries itself (Stats)
	// whether or not OnRetry is set.
	OnRetry func(edge string, err error)
}

// Target renders the spec as its /v1 request path plus query — the form
// the session sends and the registry redirects.
func (s Spec) Target() string {
	path := proto.StreamPath(s.Kind, s.Name)
	q := url.Values{}
	if s.Start > 0 {
		q.Set(proto.ParamStart, proto.FormatStart(s.Start))
	}
	if s.Bandwidth > 0 {
		q.Set(proto.ParamBandwidth, strconv.FormatInt(s.Bandwidth, 10))
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	return proto.Versioned(path)
}

// validate reports the first structural problem with the spec.
func (s Spec) validate() error {
	switch s.Kind {
	case VOD, Live, Group:
	case "":
		return fmt.Errorf("client: spec has no kind")
	default:
		return fmt.Errorf("client: kind %q is not openable (want vod, live, or group)", s.Kind)
	}
	if s.Name == "" {
		return fmt.Errorf("client: spec has no name")
	}
	if s.Start < 0 {
		return fmt.Errorf("client: negative start %v", s.Start)
	}
	if s.Kind == Live && s.Start != 0 {
		return fmt.Errorf("client: live streams have no seek offset (start %v)", s.Start)
	}
	if s.Bandwidth < 0 {
		return fmt.Errorf("client: negative bandwidth %d", s.Bandwidth)
	}
	if s.Bandwidth > 0 && s.Kind != Group {
		return fmt.Errorf("client: bandwidth is a group parameter, not %s", s.Kind)
	}
	if s.Failover < 0 {
		return fmt.Errorf("client: negative failover budget %d", s.Failover)
	}
	return nil
}

// Open validates the spec and returns a Session bound to ctx. Opening
// performs no I/O — the first registry round trip happens on Play or
// Fetch. Sessions are single-use and not safe for concurrent use.
func (c *Client) Open(ctx context.Context, spec Spec) (Session, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return newSession(ctx, c, spec), nil
}

// Nodes fetches the registry's per-node health listing
// (GET /v1/registry/nodes): identity, load, and health
// (alive/dead/draining) with heartbeat age for every registered node.
func (c *Client) Nodes(ctx context.Context) ([]proto.NodeStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.registry+proto.Versioned(proto.PathNodes), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, proto.ReadError(resp) // closes the body
	}
	defer resp.Body.Close()
	var nodes []proto.NodeStatus
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		return nil, fmt.Errorf("client: decoding node listing: %w", err)
	}
	return nodes, nil
}

package client

import (
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"repro/internal/player"
	"repro/internal/relay"
)

// Session is one logical stream through the cluster, opened from a
// Spec. A session is single-use: call Play (scripted playback) or
// Fetch (raw packet reads), then read Stats. It is not safe for
// concurrent use.
type Session interface {
	// Play streams to completion through the scripted player and
	// returns the merged metrics of every segment (never nil). Failover
	// happens inside: a dead edge is reported to the registry, excluded
	// from the next pick, and stored streams resume at the last
	// received media offset — never earlier than the spec's Start.
	Play() (*player.Metrics, error)
	// Fetch resolves the stream and returns its raw container body
	// (header, packets, trailing index) for callers that parse packets
	// themselves. Failures before the body starts — a dead edge, a
	// momentary no-edge 503 — fail over within the spec's budget, but a
	// stream severed mid-read is the caller's to handle: resume by
	// opening a new session with Start at the last offset read.
	Fetch() (io.ReadCloser, error)
	// Stats reports what the session has measured so far: the serving
	// edge and its failover counters.
	Stats() Stats
	// Target is the /v1 request path the session resolves, as built
	// from the spec.
	Target() string
}

// Stats is a session's failover accounting.
type Stats struct {
	// Edge is the host that served the stream — the last one, when the
	// session failed over.
	Edge string
	// Failovers counts serving-edge failures the session rode out: the
	// edge refused the connection, answered 5xx, or severed the stream
	// mid-play, and the session went back to the registry.
	Failovers int
	// Retries counts every extra registry round trip, failovers plus
	// no-edge (503) backoffs.
	Retries int
}

// session is the SDK's one Session implementation, wrapping the shared
// relay failover machinery.
type session struct {
	ctx     context.Context
	spec    Spec
	backoff time.Duration
	fetcher *relay.StreamFetcher
	target  string

	mu    sync.Mutex
	stats Stats
}

func newSession(ctx context.Context, c *Client, spec Spec) *session {
	return &session{
		ctx:     ctx,
		spec:    spec,
		backoff: c.backoff,
		fetcher: relay.NewStreamFetcher(c.registry, c.http),
		target:  spec.Target(),
	}
}

func (s *session) Target() string { return s.target }

func (s *session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *session) setEdge(edge string) {
	if edge == "" {
		return
	}
	s.mu.Lock()
	s.stats.Edge = edge
	s.mu.Unlock()
}

// onRetry books one retried failure and forwards it to the spec's
// observer.
func (s *session) onRetry(edge string, err error) {
	s.mu.Lock()
	s.stats.Retries++
	if edge != "" {
		s.stats.Failovers++
	}
	s.mu.Unlock()
	if f := s.spec.OnRetry; f != nil {
		f(edge, err)
	}
}

func (s *session) Play() (*player.Metrics, error) {
	fs := &relay.FailoverSession{
		Fetcher:  s.fetcher,
		Target:   s.target,
		Live:     s.spec.Kind == Live,
		Attempts: s.spec.Failover,
		Backoff:  s.backoff,
		Player:   s.spec.Player,
		WrapBody: s.spec.WrapBody,
		OnRetry:  s.onRetry,
	}
	m, edge, err := fs.Run(s.ctx)
	s.setEdge(edge)
	return m, err
}

func (s *session) Fetch() (io.ReadCloser, error) {
	attempts := s.spec.Failover + 1
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		resp, edge, err := s.fetcher.Fetch(s.ctx, s.target)
		s.setEdge(edge)
		if err == nil {
			return resp.Body, nil
		}
		lastErr = err
		if !relay.Retryable(err) || attempt == attempts || s.ctx.Err() != nil {
			break
		}
		var fe *relay.FetchError
		errors.As(err, &fe)
		s.onRetry(fe.Edge, err)
		if !sleepCtx(s.ctx, relay.FailoverBackoff(s.backoff, attempt)) {
			break
		}
	}
	return nil, lastErr
}

// sleepCtx waits for d or until ctx is cancelled, reporting whether the
// full wait elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/encoder"
	"repro/internal/streaming"
)

// Broadcast is a managed live lecture broadcast: it owns the publishing
// goroutine and exposes Stop/Done per the goroutine-lifecycle conventions.
type Broadcast struct {
	Channel *streaming.Channel

	cancel context.CancelFunc
	done   chan struct{}
	err    error
}

// BroadcastLecture encodes the lecture as a live stream and starts
// publishing it to a new channel on the system's server, paced by packet
// send times on the system clock. The returned Broadcast must be stopped
// (or allowed to finish) by the caller.
func (s *System) BroadcastLecture(lec *capture.Lecture, channelName string) (*Broadcast, error) {
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{Live: true, LeadTime: time.Second}, &buf); err != nil {
		return nil, err
	}
	h, packets, _, err := asf.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("core: broadcast read: %w", err)
	}
	ch, err := s.Server.CreateChannel(channelName, h)
	if err != nil {
		return nil, err
	}

	//lodlint:allow bare-ctx the broadcast owns its lifecycle; Stop cancels it
	ctx, cancel := context.WithCancel(context.Background())
	b := &Broadcast{Channel: ch, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(b.done)
		defer ch.Close()
		if err := ch.PublishPaced(ctx, s.clock, packets); err != nil && !errors.Is(err, context.Canceled) {
			b.err = err
		}
	}()
	return b, nil
}

// Done is closed when the broadcast has finished (all packets published or
// stopped).
func (b *Broadcast) Done() <-chan struct{} { return b.done }

// Stop cancels the broadcast and waits for the publisher to exit. It
// returns any publishing error.
func (b *Broadcast) Stop() error {
	b.cancel()
	<-b.done
	return b.err
}

// Err returns the publishing error after Done is closed.
func (b *Broadcast) Err() error {
	select {
	case <-b.done:
		return b.err
	default:
		return nil
	}
}

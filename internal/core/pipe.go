package core

import "io"

// newPipe returns an in-memory reader/writer pair for streaming an asset
// to a player without touching the network stack. It is io.Pipe with the
// names this package uses.
func newPipe() (*io.PipeReader, *io.PipeWriter) {
	return io.Pipe()
}

package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/encoder"
	"repro/internal/media"
	"repro/internal/netsim"
)

// E2EConfig parameterizes the end-to-end synchronization experiment (E7,
// Figure 7): a lecture is encoded, streamed through a simulated network
// link, and presented by a client with a start-up (jitter) buffer delay.
type E2EConfig struct {
	Lecture capture.LectureConfig
	Link    netsim.Link
	// StartupDelay is the client's pre-buffering delay before playback
	// begins; larger values absorb more network jitter.
	StartupDelay time.Duration
	// LeadTime is how far ahead of PTS the server may send packets.
	LeadTime time.Duration
	// PacketOverhead models per-packet header bytes on the wire.
	PacketOverhead int
}

// E2EResult reports the experiment outcome.
type E2EResult struct {
	// Packets and Lost count transport outcomes.
	Packets int
	Lost    int
	// MaxSkew and MeanSkew are presentation lateness of delivered media
	// relative to the delayed playback clock (PTS + StartupDelay).
	MaxSkew  time.Duration
	MeanSkew time.Duration
	// LateEvents counts media items that missed their presentation time.
	LateEvents int
	// SlideFlips is the number of slide commands presented.
	SlideFlips int
	// MaxSlideSkew is the worst video-vs-slide offset at flip instants.
	MaxSlideSkew time.Duration
	// DecodableFrac is the fraction of video frames decodable after loss.
	DecodableFrac float64
	// AchievedBitsPerSecond is the delivered media rate.
	AchievedBitsPerSecond int64
}

// Synchronized reports whether the run meets the given lip-sync and slide
// tolerances — the paper's qualitative claim ("view live video … along
// with synchronized images of his presentation slides") made measurable.
func (r *E2EResult) Synchronized(mediaTol, slideTol time.Duration) bool {
	return r.MaxSkew <= mediaTol && r.MaxSlideSkew <= slideTol
}

// RunEndToEnd executes the E7 experiment deterministically (analytic time,
// no goroutines): encode → link → client presentation model.
func RunEndToEnd(cfg E2EConfig) (*E2EResult, error) {
	if err := cfg.Link.Validate(); err != nil {
		return nil, err
	}
	if cfg.StartupDelay < 0 || cfg.LeadTime < 0 {
		return nil, errors.New("core: negative delay")
	}
	lec, err := capture.NewLecture(cfg.Lecture)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{LeadTime: cfg.LeadTime}, &buf); err != nil {
		return nil, err
	}
	r := asf.NewReader(bytes.NewReader(buf.Bytes()))
	h, err := r.ReadHeader()
	if err != nil {
		return nil, err
	}

	link := cfg.Link
	link.Reset()

	type arrival struct {
		pkt asf.Packet
		at  time.Duration
	}
	var arrivals []arrival
	res := &E2EResult{}
	var vdec codec.VideoDecoder
	var deliveredBytes int64

	for {
		pkt, err := r.ReadPacket()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("core: e2e read: %w", err)
		}
		res.Packets++
		d := link.Transmit(pkt.SendAt, len(pkt.Payload)+cfg.PacketOverhead)
		if d.Lost {
			res.Lost++
			if pkt.Kind == media.KindVideo {
				vdec.Lose()
			}
			continue
		}
		deliveredBytes += int64(len(pkt.Payload))
		arrivals = append(arrivals, arrival{pkt: pkt, at: d.ArrivedAt})
	}
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].at < arrivals[j].at })

	// Client model: playback clock runs at PTS + StartupDelay; an item is
	// presented at max(due, arrival). Video frames feed the loss-aware
	// decoder in arrival order.
	var totalSkew time.Duration
	var skewCount int
	videoPresent := make(map[time.Duration]time.Duration) // PTS -> presented-at
	for _, a := range arrivals {
		if a.pkt.Kind == media.KindVideo {
			vdec.Feed(a.pkt.Payload)
		}
		due := a.pkt.PTS + cfg.StartupDelay
		presented := due
		if a.at > due {
			presented = a.at
			res.LateEvents++
		}
		skew := presented - due
		if skew > res.MaxSkew {
			res.MaxSkew = skew
		}
		totalSkew += skew
		skewCount++
		if a.pkt.Kind == media.KindVideo {
			videoPresent[a.pkt.PTS] = presented
		}
	}
	if skewCount > 0 {
		res.MeanSkew = totalSkew / time.Duration(skewCount)
	}

	// Slide commands execute on the playback clock (the header carried
	// them before playback began). The video-vs-slide skew at a flip is
	// how late the video frame nearest the flip instant was presented.
	frameIval := lec.Profile.FrameInterval()
	for _, sc := range h.Scripts {
		if sc.Type != "slide" {
			continue
		}
		res.SlideFlips++
		flipAt := sc.At + cfg.StartupDelay
		framePTS := sc.At - (sc.At % frameIval)
		if presented, ok := videoPresent[framePTS]; ok {
			skew := presented - flipAt
			if skew < 0 {
				skew = -skew
			}
			if skew > res.MaxSlideSkew {
				res.MaxSlideSkew = skew
			}
		}
	}

	if total := vdec.Total(); total > 0 {
		res.DecodableFrac = float64(vdec.Decodable) / float64(total)
	}
	if d := lec.Duration; d > 0 {
		res.AchievedBitsPerSecond = int64(float64(deliveredBytes*8) / d.Seconds())
	}
	return res, nil
}

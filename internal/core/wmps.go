// Package core is the public facade of WMPS, the Web-based Multimedia
// Presentation System the paper proposes and implements: a distributed
// Lecture-on-Demand pipeline of Record → Publish → Serve → Play, with the
// extended timed Petri net as the synchronization model underneath.
//
// A downstream user drives the whole system through this package:
//
//	sys := core.NewSystem(nil)
//	lec, _ := sys.RecordLecture(capture.LectureConfig{...})
//	res, _ := sys.PublishLecture(lec, workDir, "lecture1")
//	m, _ := sys.Replay("lecture1", player.Options{})
package core

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/player"
	"repro/internal/publish"
	"repro/internal/streaming"
	"repro/internal/vclock"
)

// System is one WMPS deployment: a streaming server plus the recording and
// publishing pipeline around it.
type System struct {
	// Server is the embedded LOD streaming server.
	Server *streaming.Server

	clock vclock.Clock
}

// NewSystem creates a WMPS deployment on the given clock (nil = real).
func NewSystem(clock vclock.Clock) *System {
	if clock == nil {
		clock = vclock.Real{}
	}
	return &System{Server: streaming.NewServer(clock), clock: clock}
}

// RecordLecture captures a lecture from the simulated devices.
func (s *System) RecordLecture(cfg capture.LectureConfig) (*capture.Lecture, error) {
	return capture.NewLecture(cfg)
}

// PublishLecture runs the §3 workflow: write the raw recording artifacts
// under workDir, publish them into a synchronized container, and register
// the result with the server under assetName.
func (s *System) PublishLecture(lec *capture.Lecture, workDir, assetName string) (*publish.Result, error) {
	if assetName == "" {
		return nil, errors.New("core: empty asset name")
	}
	paths, err := publish.WriteRawLecture(lec, workDir)
	if err != nil {
		return nil, err
	}
	outPath := filepath.Join(workDir, assetName+".asf")
	res, err := publish.Publish(publish.Request{
		Title:      lec.Title,
		VideoPath:  paths.VideoPath,
		SlidesDir:  paths.SlidesDir,
		OutputPath: outPath,
	})
	if err != nil {
		return nil, err
	}
	if err := s.ServeAssetFile(assetName, outPath); err != nil {
		return nil, err
	}
	return res, nil
}

// ServeAssetFile registers a stored container file with the server.
func (s *System) ServeAssetFile(name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: open asset: %w", err)
	}
	defer func() {
		_ = f.Close()
	}()
	_, err = s.Server.RegisterAsset(name, asf.NewReader(bufio.NewReader(f)))
	return err
}

// Replay plays a registered asset directly (no network), returning the
// player's render metrics — the Fig 5(b) "replay the representation" step.
func (s *System) Replay(assetName string, opts player.Options) (*player.Metrics, error) {
	asset, ok := s.Server.Asset(assetName)
	if !ok {
		return nil, fmt.Errorf("%w: asset %q", streaming.ErrNotFound, assetName)
	}
	pr, pw := newPipe()
	go func() {
		w, err := asf.NewWriter(pw, asset.Header)
		if err != nil {
			pw.CloseWithError(err)
			return
		}
		for _, p := range asset.Packets {
			if _, err := w.WritePacket(p); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		if err := w.Close(); err != nil {
			pw.CloseWithError(err)
			return
		}
		pw.CloseWithError(nil)
	}()
	if opts.Clock == nil {
		opts.Clock = s.clock
	}
	return player.New(opts).Play(pr)
}

package core

import (
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/netsim"
	"repro/internal/player"
)

func lectureConfig(t *testing.T, dur time.Duration, slides int) capture.LectureConfig {
	t.Helper()
	p, err := codec.ByName("modem-56k")
	if err != nil {
		t.Fatal(err)
	}
	return capture.LectureConfig{
		Title: "core test", Duration: dur, Profile: p,
		SlideCount: slides, AnnotationEvery: dur / 2, Seed: 9,
	}
}

func TestRecordPublishReplayPipeline(t *testing.T) {
	sys := NewSystem(nil)
	lec, err := sys.RecordLecture(lectureConfig(t, 4*time.Second, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.PublishLecture(lec, t.TempDir(), "lecture1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Slides != 4 {
		t.Fatalf("published %d slides", res.Slides)
	}
	if res.Tree == nil || res.Tree.Len() != 4 {
		t.Fatalf("content tree missing or wrong size")
	}
	// The asset is registered and replayable.
	if _, ok := sys.Server.Asset("lecture1"); !ok {
		t.Fatal("asset not registered")
	}
	m, err := sys.Replay("lecture1", player.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.SlidesShown != 4 {
		t.Fatalf("replay showed %d slides", m.SlidesShown)
	}
	if m.VideoFrames != len(lec.Video) {
		t.Fatalf("replay frames = %d, want %d", m.VideoFrames, len(lec.Video))
	}
	if m.BrokenFrames != 0 {
		t.Fatalf("broken frames on clean pipeline: %d", m.BrokenFrames)
	}
}

func TestReplayUnknownAsset(t *testing.T) {
	sys := NewSystem(nil)
	if _, err := sys.Replay("ghost", player.Options{}); err == nil {
		t.Fatal("unknown asset replayed")
	}
}

func TestPublishLectureValidation(t *testing.T) {
	sys := NewSystem(nil)
	lec, err := sys.RecordLecture(lectureConfig(t, time.Second, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.PublishLecture(lec, t.TempDir(), ""); err == nil {
		t.Fatal("empty asset name accepted")
	}
}

func TestServeAssetFileMissing(t *testing.T) {
	sys := NewSystem(nil)
	if err := sys.ServeAssetFile("x", "/does/not/exist"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestFigure7EndToEnd is the E7 experiment: over a clean LAN the whole
// presentation is synchronized within tight tolerances; over a congested
// modem at a too-rich profile it is not.
func TestFigure7EndToEnd(t *testing.T) {
	cfg := E2EConfig{
		Lecture:      lectureConfig(t, 10*time.Second, 5),
		Link:         netsim.LinkLAN,
		StartupDelay: 500 * time.Millisecond,
		LeadTime:     500 * time.Millisecond,
	}
	res, err := RunEndToEnd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 {
		t.Fatalf("LAN lost %d packets", res.Lost)
	}
	if !res.Synchronized(80*time.Millisecond, 500*time.Millisecond) {
		t.Fatalf("LAN run not synchronized: maxSkew=%v slideSkew=%v", res.MaxSkew, res.MaxSlideSkew)
	}
	if res.SlideFlips != 5 {
		t.Fatalf("slide flips = %d", res.SlideFlips)
	}
	if res.DecodableFrac != 1.0 {
		t.Fatalf("decodable frac = %v", res.DecodableFrac)
	}

	// Same lecture at a DSL-class profile over a 56k modem: starved.
	rich := cfg
	richProfile, err := codec.ByName("dsl-300k")
	if err != nil {
		t.Fatal(err)
	}
	rich.Lecture.Profile = richProfile
	rich.Link = netsim.LinkModem56k
	starved, err := RunEndToEnd(rich)
	if err != nil {
		t.Fatal(err)
	}
	if starved.Synchronized(80*time.Millisecond, 500*time.Millisecond) {
		t.Fatal("over-bandwidth run reported synchronized")
	}
	if starved.MaxSkew <= res.MaxSkew {
		t.Fatalf("starved skew %v not worse than LAN %v", starved.MaxSkew, res.MaxSkew)
	}
}

func TestEndToEndLossReducesDecodability(t *testing.T) {
	cfg := E2EConfig{
		Lecture:      lectureConfig(t, 10*time.Second, 2),
		Link:         netsim.Link{BitsPerSecond: 10_000_000, LossRate: 0.10, Seed: 4},
		StartupDelay: 200 * time.Millisecond,
	}
	res, err := RunEndToEnd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost == 0 {
		t.Fatal("lossy link lost nothing")
	}
	if res.DecodableFrac >= 1.0 || res.DecodableFrac <= 0 {
		t.Fatalf("decodable frac = %v, want in (0,1)", res.DecodableFrac)
	}
}

func TestEndToEndStartupDelayAbsorbsJitter(t *testing.T) {
	base := E2EConfig{
		Lecture: lectureConfig(t, 8*time.Second, 2),
		Link: netsim.Link{
			BitsPerSecond: 1_000_000, Latency: 50 * time.Millisecond,
			Jitter: 200 * time.Millisecond, Seed: 6,
		},
		LeadTime: 0,
	}
	noBuffer := base
	noBuffer.StartupDelay = 0
	withBuffer := base
	withBuffer.StartupDelay = time.Second

	r0, err := RunEndToEnd(noBuffer)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunEndToEnd(withBuffer)
	if err != nil {
		t.Fatal(err)
	}
	if r1.LateEvents >= r0.LateEvents && r0.LateEvents > 0 {
		t.Fatalf("startup delay did not reduce lateness: %d -> %d", r0.LateEvents, r1.LateEvents)
	}
	if r1.MaxSkew > r0.MaxSkew {
		t.Fatalf("buffered skew %v worse than unbuffered %v", r1.MaxSkew, r0.MaxSkew)
	}
}

func TestEndToEndValidation(t *testing.T) {
	bad := E2EConfig{
		Lecture: lectureConfig(t, time.Second, 1),
		Link:    netsim.Link{BitsPerSecond: -1},
	}
	if _, err := RunEndToEnd(bad); err == nil {
		t.Fatal("invalid link accepted")
	}
	neg := E2EConfig{Lecture: lectureConfig(t, time.Second, 1), StartupDelay: -1}
	if _, err := RunEndToEnd(neg); err == nil {
		t.Fatal("negative delay accepted")
	}
}

package core

import (
	"testing"
	"time"

	"repro/internal/vclock"
)

func TestBroadcastLectureLifecycle(t *testing.T) {
	clk := vclock.NewVirtual()
	sys := NewSystem(clk)
	lec, err := sys.RecordLecture(lectureConfig(t, 5*time.Second, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.BroadcastLecture(lec, "live1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.Server.Channel("live1"); !ok {
		t.Fatal("channel not registered")
	}

	// A subscriber attached before packets flow receives everything.
	sub, err := b.Channel.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Drive the virtual clock until the broadcast completes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case <-b.Done():
		default:
			if time.Now().After(deadline) {
				t.Fatal("broadcast did not finish")
			}
			if clk.PendingWaiters() > 0 {
				clk.Advance(500 * time.Millisecond)
			} else {
				time.Sleep(time.Millisecond)
			}
			continue
		}
		break
	}
	if err := b.Err(); err != nil {
		t.Fatalf("broadcast error: %v", err)
	}
	if b.Channel.Published() == 0 {
		t.Fatal("nothing published")
	}
	// All published packets were fanned out to the subscriber.
	received := int64(len(sub.Backlog))
	for range sub.C {
		received++
	}
	// Backlog trimming at keyframes means backlog+live can double-count
	// the packets that were both in the backlog window and delivered
	// live; since this subscriber joined before the first publish, its
	// backlog was empty and C carries everything.
	if received != b.Channel.Published() {
		t.Fatalf("subscriber received %d of %d packets", received, b.Channel.Published())
	}
}

func TestBroadcastStopCancels(t *testing.T) {
	clk := vclock.NewVirtual()
	sys := NewSystem(clk)
	lec, err := sys.RecordLecture(lectureConfig(t, 60*time.Second, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.BroadcastLecture(lec, "live2")
	if err != nil {
		t.Fatal(err)
	}
	// Stop immediately: the paced publisher is mid-sleep on the virtual
	// clock; cancellation must win.
	if err := b.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if !b.Channel.Closed() {
		t.Fatal("channel not closed after Stop")
	}
	select {
	case <-b.Done():
	default:
		t.Fatal("Done not closed after Stop")
	}
}

func TestBroadcastDuplicateChannel(t *testing.T) {
	sys := NewSystem(vclock.NewVirtual())
	lec, err := sys.RecordLecture(lectureConfig(t, time.Second, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.BroadcastLecture(lec, "dup")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = b.Stop()
	}()
	if _, err := sys.BroadcastLecture(lec, "dup"); err == nil {
		t.Fatal("duplicate channel accepted")
	}
}

package proto

import (
	"os"
	"strings"
	"testing"
)

// TestREADMEDocumentsContract keeps README.md's endpoint tables in sync
// with this package: every route the contract defines must appear in
// the README (in its /v1 form for the stream and registry routes), and
// the failover header must be named. Changing a constant here without
// regenerating the tables fails this test.
func TestREADMEDocumentsContract(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(readme)
	for _, want := range []string{
		Versioned(PrefixVOD),
		Versioned(PrefixLive),
		Versioned(PrefixGroup),
		Versioned(PrefixFetch),
		Versioned(PathAssets),
		Versioned(PathRegister),
		Versioned(PathHeartbeat),
		Versioned(PathReportFailure),
		Versioned(PathDeregister),
		Versioned(PathNodes),
		Versioned(PathCatalog),
		Versioned(PathCatalogPublish),
		Versioned(PathCatalogUnpublish),
		Versioned(PathCatalogRollback),
		Versioned(PrefixPublish),
		Versioned(PrefixUnpublish),
		PathMetrics,
		PathStatus,
		ExcludeHeader,
		CatalogVersionHeader,
		"?" + ParamStart + "=",
		"?" + ParamBandwidth + "=",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("README.md does not document %q; regenerate the endpoint tables from internal/proto", want)
		}
	}
	// The legacy aliases must stay documented too.
	if !strings.Contains(doc, "legacy") {
		t.Error("README.md does not mention the legacy unversioned aliases")
	}
}

// TestDESIGNDocumentsContract pins DESIGN.md's API-contract section.
func TestDESIGNDocumentsContract(t *testing.T) {
	design, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(design)
	for _, want := range []string{"API contract", "internal/proto", "internal/client", VersionPrefix} {
		if !strings.Contains(doc, want) {
			t.Errorf("DESIGN.md is missing %q in its API contract section", want)
		}
	}
}

package proto

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestStreamPathEscapesNames(t *testing.T) {
	for _, tc := range []struct {
		kind StreamKind
		name string
		want string
	}{
		{StreamVOD, "lec-1", "/vod/lec-1"},
		{StreamLive, "class", "/live/class"},
		{StreamGroup, "grp-0", "/group/grp-0"},
		{StreamFetch, "lec-1", "/fetch/lec-1"},
		{StreamVOD, "week 1/intro", "/vod/week%201%2Fintro"},
		{StreamVOD, "what?now#really", "/vod/what%3Fnow%23really"},
	} {
		if got := StreamPath(tc.kind, tc.name); got != tc.want {
			t.Errorf("StreamPath(%s, %q) = %q, want %q", tc.kind, tc.name, got, tc.want)
		}
		// The name survives a URL round trip: escape here, decode as a
		// request path, extract by kind.
		u, err := url.Parse("http://host" + Versioned(StreamPath(tc.kind, tc.name)))
		if err != nil {
			t.Fatal(err)
		}
		if got := StreamName(u.Path, tc.kind); got != tc.name {
			t.Errorf("round trip of %q through %s = %q", tc.name, tc.kind, got)
		}
	}
}

func TestStreamNameAcceptsBothVersions(t *testing.T) {
	if got := StreamName("/vod/lec", StreamVOD); got != "lec" {
		t.Fatalf("legacy name = %q", got)
	}
	if got := StreamName("/v1/vod/lec", StreamVOD); got != "lec" {
		t.Fatalf("versioned name = %q", got)
	}
}

func TestSplitStreamPath(t *testing.T) {
	for _, tc := range []struct {
		path string
		kind StreamKind
		name string
		ok   bool
	}{
		{"/vod/lec", StreamVOD, "lec", true},
		{"/v1/vod/lec", StreamVOD, "lec", true},
		{"/live/class", StreamLive, "class", true},
		{"/v1/group/g", StreamGroup, "g", true},
		{"/fetch/a", StreamFetch, "a", true},
		{"/vod/", "", "", false},
		{"/assets", "", "", false},
		{"/registry/nodes", "", "", false},
	} {
		kind, name, ok := SplitStreamPath(tc.path)
		if ok != tc.ok || (ok && (kind != tc.kind || name != tc.name)) {
			t.Errorf("SplitStreamPath(%q) = %v %q %v, want %v %q %v",
				tc.path, kind, name, ok, tc.kind, tc.name, tc.ok)
		}
	}
}

func TestUnversioned(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"/v1/vod/lec", "/vod/lec"},
		{"/vod/lec", "/vod/lec"},
		{"/v1", "/"},
		{"/v1x/vod/lec", "/v1x/vod/lec"}, // not the version prefix
	} {
		if got := Unversioned(tc.in); got != tc.want {
			t.Errorf("Unversioned(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestHandleMountsBothForms(t *testing.T) {
	mux := http.NewServeMux()
	HandleFunc(mux, PrefixVOD, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(StreamName(r.URL.Path, StreamVOD)))
	})
	for _, path := range []string{"/vod/lec", "/v1/vod/lec"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK || rec.Body.String() != "lec" {
			t.Errorf("GET %s = %d %q, want 200 lec", path, rec.Code, rec.Body.String())
		}
	}
}

func TestParseStart(t *testing.T) {
	for _, tc := range []struct {
		raw  string
		want time.Duration
		ok   bool
	}{
		{"30s", 30 * time.Second, true},
		{"1500ms", 1500 * time.Millisecond, true},
		{"0s", 0, true},
		{"", 0, false},
		{"bogus", 0, false},
		{"-5s", 0, false},
		{"30", 0, false}, // a bare number is not a Go duration
	} {
		got, err := ParseStart(tc.raw)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseStart(%q) = %v, %v; want %v, ok=%v", tc.raw, got, err, tc.want, tc.ok)
		}
		if err != nil {
			var pe *Error
			if !asError(err, &pe) || pe.Status != http.StatusBadRequest {
				t.Errorf("ParseStart(%q) error is not a 400 *Error: %#v", tc.raw, err)
			}
		}
	}
	// FormatStart produces what ParseStart accepts.
	if got, err := ParseStart(FormatStart(2718 * time.Millisecond)); err != nil || got != 2718*time.Millisecond {
		t.Fatalf("FormatStart round trip = %v, %v", got, err)
	}
}

func TestParseBandwidth(t *testing.T) {
	if got, err := ParseBandwidth("768000"); err != nil || got != 768000 {
		t.Fatalf("ParseBandwidth = %v, %v", got, err)
	}
	for _, raw := range []string{"", "x", "0", "-5"} {
		if _, err := ParseBandwidth(raw); err == nil {
			t.Errorf("ParseBandwidth(%q) accepted", raw)
		}
	}
}

func TestExcludeRoundTrip(t *testing.T) {
	refs := []string{"edge-1.lod", "edge-2.lod:8081"}
	if got := SplitExclude(JoinExclude(refs)); !reflect.DeepEqual(got, refs) {
		t.Fatalf("round trip = %v", got)
	}
	if got := SplitExclude(" a , , b ,"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("messy split = %v", got)
	}
	if got := SplitExclude(""); got != nil {
		t.Fatalf("empty split = %v", got)
	}
}

func TestErrorBodyRoundTrip(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, http.StatusBadRequest, "bad start parameter")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	got := ReadError(rec.Result())
	if got.Status != http.StatusBadRequest || got.Message != "bad start parameter" {
		t.Fatalf("ReadError = %+v", got)
	}

	// A legacy text error still reads as an Error.
	rec = httptest.NewRecorder()
	http.Error(rec, "plain refusal", http.StatusServiceUnavailable)
	got = ReadError(rec.Result())
	if got.Status != http.StatusServiceUnavailable || got.Message != "plain refusal" {
		t.Fatalf("legacy ReadError = %+v", got)
	}

	// WriteErr preserves a *Error's own status.
	rec = httptest.NewRecorder()
	_, perr := ParseStart("bogus")
	WriteErr(rec, perr)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("WriteErr status = %d", rec.Code)
	}
	var decoded Error
	if err := json.NewDecoder(rec.Body).Decode(&decoded); err != nil || !strings.Contains(decoded.Message, "start") {
		t.Fatalf("WriteErr body = %+v, %v", decoded, err)
	}
}

func TestNodeStatsLoad(t *testing.T) {
	if got := (NodeStats{ActiveClients: 3}).Load(); got != 3 {
		t.Fatalf("session-count load = %v", got)
	}
	if got := (NodeStats{ActiveClients: 3, InFlightBps: 2_000_000}).Load(); got != 2 {
		t.Fatalf("bytes-in-flight load = %v", got)
	}
	if got := (NodeStats{ReservedBps: 500, CapacityBps: 1000}).Load(); got != 0.5 {
		t.Fatalf("capacity-fraction load = %v", got)
	}
}

// asError is errors.As without importing errors in the test twice over.
func asError(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

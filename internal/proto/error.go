package proto

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Error is the JSON body of a /v1 error response — the typed
// alternative to a bare text line, so clients can branch on Status and
// render Message without parsing prose.
type Error struct {
	Status  int    `json:"status"`
	Message string `json:"error"`
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("proto: status %d: %s", e.Status, e.Message)
}

// WriteError answers a request with the given status and an Error
// body.
func WriteError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(Error{Status: status, Message: msg})
}

// WriteErr answers a request with err as an Error body: a *Error keeps
// its status and message (the ParseStart/ParseBandwidth path), anything
// else becomes a 500.
func WriteErr(w http.ResponseWriter, err error) {
	var e *Error
	if errors.As(err, &e) {
		WriteError(w, e.Status, e.Message)
		return
	}
	WriteError(w, http.StatusInternalServerError, err.Error())
}

// ReadError extracts the error from a non-2xx response, closing its
// body: an Error body decodes as itself, anything else (a legacy text
// error, an empty body) is wrapped with the response's status code.
func ReadError(resp *http.Response) *Error {
	defer resp.Body.Close()
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	var e Error
	if json.Unmarshal(b, &e) == nil && e.Message != "" {
		if e.Status == 0 {
			e.Status = resp.StatusCode
		}
		return &e
	}
	msg := strings.TrimSpace(string(b))
	if msg == "" {
		msg = resp.Status
	}
	return &Error{Status: resp.StatusCode, Message: msg}
}

// Package proto is the single source of truth for the Lecture-on-Demand
// wire contract: the HTTP routes every role serves, the query parameters
// and headers clients send, the JSON DTOs the registry control plane
// exchanges, and the JSON error body all /v1 endpoints return.
//
// Before this package the contract existed only as string literals
// scattered across streaming, relay, loadgen, and the cmds; every new
// consumer re-derived it by reading handlers. Now servers mount routes
// through Handle/HandleFunc (which registers the legacy unversioned path
// and its /v1 alias together), clients build paths through StreamPath,
// and both sides marshal control-plane messages through the DTO types —
// so the contract can only change here, in one reviewable place. The
// `make api-check` gate enforces that: raw route literals outside this
// package fail the build.
//
// # Versioning
//
// The current API generation is Version ("v1"). Every endpoint serves
// under the VersionPrefix ("/v1/vod/..., /v1/registry/nodes, ...") with
// the original unversioned paths kept as legacy aliases for old
// clients. New code — internal/client, the relay control-plane helpers,
// edge→origin pulls — speaks the versioned form.
package proto

import (
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Version is the current API generation; VersionPrefix is its path
// prefix. Legacy clients may omit the prefix: every route is mounted
// under both forms.
const (
	Version       = "v1"
	VersionPrefix = "/" + Version
)

// StreamKind names one streaming route family.
type StreamKind string

// The streaming route families.
const (
	// StreamVOD replays a stored container, paced by packet send times.
	StreamVOD StreamKind = "vod"
	// StreamLive joins a live broadcast channel.
	StreamLive StreamKind = "live"
	// StreamGroup selects the richest variant of a multi-rate group
	// fitting the declared bandwidth, then streams it like VOD.
	StreamGroup StreamKind = "group"
	// StreamFetch transfers a whole stored container unpaced — the
	// origin→edge mirror path, not a viewer stream.
	StreamFetch StreamKind = "fetch"
)

// Route prefixes of the streaming endpoints. The path segment after the
// prefix is the percent-encoded asset/channel/group name.
const (
	PrefixVOD   = "/vod/"
	PrefixLive  = "/live/"
	PrefixGroup = "/group/"
	PrefixFetch = "/fetch/"
)

// JSON listing endpoints of the streaming server.
const (
	PathAssets   = "/assets"
	PathChannels = "/channels"
	PathGroups   = "/groups"
)

// Registry control-plane endpoints. The POST bodies are the DTO types
// in this package (NodeInfo, HeartbeatMsg, FailureReport,
// DeregisterMsg); GET PathNodes returns []NodeStatus.
const (
	PathRegister      = "/registry/register"
	PathHeartbeat     = "/registry/heartbeat"
	PathReportFailure = "/registry/report-failure"
	PathDeregister    = "/registry/deregister"
	PathNodes         = "/registry/nodes"
)

// Registry catalog endpoints: the durable, versioned record of what is
// published on the cluster. GET PathCatalog returns a Catalog; the POST
// bodies of PathCatalogPublish/PathCatalogUnpublish/PathCatalogRollback
// are PublishMsg, UnpublishMsg, and RollbackMsg. Every catalog
// mutation bumps the version carried in CatalogVersionHeader — a
// rollback restores an earlier snapshot's content under a new, higher
// version, so the version header only ever grows.
const (
	PathCatalog          = "/registry/catalog"
	PathCatalogPublish   = "/registry/publish"
	PathCatalogUnpublish = "/registry/unpublish"
	PathCatalogRollback  = "/registry/rollback"
)

// Content-publication endpoints of the streaming server: POST
// PrefixPublish{name} with a container body registers (or replaces) the
// named asset live — in-flight sessions of the old content finish,
// new opens get the new bytes; POST PrefixUnpublish{name} removes an
// asset or rate group. The path segment after the prefix is the
// percent-encoded name, exactly like the streaming routes.
const (
	PrefixPublish   = "/publish/"
	PrefixUnpublish = "/unpublish/"
)

// Observability endpoints every role serves (internal/metrics mounts
// them): Prometheus text and a flat JSON snapshot.
const (
	PathMetrics = "/metrics"
	PathStatus  = "/status"
)

// Query parameters of the streaming endpoints.
const (
	// ParamStart seeks a stored stream to a presentation offset (a Go
	// duration, e.g. start=30s); it is also how a failed-over client
	// resumes at the last received offset. See FormatStart/ParseStart.
	ParamStart = "start"
	// ParamBandwidth declares the client's link bandwidth in bits/s on a
	// group request; the server streams the richest variant that fits.
	ParamBandwidth = "bw"
)

// ExcludeHeader is the request header a failing-over client sets on its
// registry request to name edge hosts (or node IDs) it must not be
// redirected back to — the nodes it just escaped. Values are
// comma-separated; see JoinExclude/SplitExclude.
const ExcludeHeader = "X-Lod-Exclude"

// CatalogVersionHeader is the response header the registry sets on
// heartbeat, redirect, and catalog responses: the current catalog
// version, a decimal uint64 that only ever grows. Edges compare it
// against the version they last synced and re-fetch PathCatalog when it
// moved, invalidating mirrored copies whose entries changed. See
// FormatCatalogVersion/ParseCatalogVersion.
const CatalogVersionHeader = "X-Lod-Catalog-Version"

// Prefix returns the route prefix of a stream kind.
func Prefix(k StreamKind) string {
	switch k {
	case StreamLive:
		return PrefixLive
	case StreamGroup:
		return PrefixGroup
	case StreamFetch:
		return PrefixFetch
	default:
		return PrefixVOD
	}
}

// StreamPath builds the unversioned request path for a named stream,
// percent-encoding the name so assets called "week 1/intro" or
// containing ?/# survive the URL. Handlers decode it back; servers see
// the original name. Prepend VersionPrefix (Versioned) for the /v1
// form.
func StreamPath(k StreamKind, name string) string {
	return Prefix(k) + url.PathEscape(name)
}

// Versioned returns the /v1 form of an unversioned route path.
func Versioned(path string) string { return VersionPrefix + path }

// Unversioned strips the /v1 prefix from a request path, returning
// legacy paths unchanged — handlers mounted under both forms normalize
// through it before extracting names.
func Unversioned(path string) string {
	if path == VersionPrefix {
		return "/"
	}
	if strings.HasPrefix(path, VersionPrefix+"/") {
		return strings.TrimPrefix(path, VersionPrefix)
	}
	return path
}

// StreamName extracts the stream name from a decoded request path of
// the given kind, accepting both the versioned and legacy forms.
func StreamName(path string, k StreamKind) string {
	return strings.TrimPrefix(Unversioned(path), Prefix(k))
}

// SplitStreamPath recognizes a decoded request path as one of the
// streaming routes (versioned or legacy) and splits it into kind and
// name. It reports false for non-stream paths and empty names.
func SplitStreamPath(path string) (StreamKind, string, bool) {
	p := Unversioned(path)
	for _, k := range []StreamKind{StreamVOD, StreamLive, StreamGroup, StreamFetch} {
		if rest := strings.TrimPrefix(p, Prefix(k)); rest != p {
			return k, rest, rest != ""
		}
	}
	return "", "", false
}

// Handle mounts h on mux under both path and its /v1 alias.
func Handle(mux *http.ServeMux, path string, h http.Handler) {
	mux.Handle(path, h)
	mux.Handle(Versioned(path), h)
}

// HandleFunc is Handle for a handler function.
func HandleFunc(mux *http.ServeMux, path string, h http.HandlerFunc) {
	Handle(mux, path, h)
}

// FormatStart renders a seek/resume offset as the canonical ParamStart
// value (integer milliseconds, e.g. "1500ms").
func FormatStart(at time.Duration) string {
	return strconv.FormatInt(at.Milliseconds(), 10) + "ms"
}

// ParseStart parses a ParamStart value: a non-negative Go duration.
// Malformed or negative values are errors — servers answer them with
// 400 and an Error body rather than guessing.
func ParseStart(raw string) (time.Duration, error) {
	at, err := time.ParseDuration(raw)
	if err != nil {
		return 0, &Error{Status: http.StatusBadRequest,
			Message: "bad " + ParamStart + " parameter " + strconv.Quote(raw) + ": want a duration like 30s"}
	}
	if at < 0 {
		return 0, &Error{Status: http.StatusBadRequest,
			Message: "bad " + ParamStart + " parameter " + strconv.Quote(raw) + ": must not be negative"}
	}
	return at, nil
}

// ParseBandwidth parses a ParamBandwidth value: a positive bits/s
// integer.
func ParseBandwidth(raw string) (int64, error) {
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || v <= 0 {
		return 0, &Error{Status: http.StatusBadRequest,
			Message: "bad " + ParamBandwidth + " parameter " + strconv.Quote(raw) + ": want positive bits/s"}
	}
	return v, nil
}

// RoutePath builds the request path for a named resource under one of
// the control prefixes (PrefixPublish, PrefixUnpublish),
// percent-encoding the name like StreamPath does. Prepend VersionPrefix
// (Versioned) for the /v1 form.
func RoutePath(prefix, name string) string {
	return prefix + url.PathEscape(name)
}

// RouteName extracts the resource name following prefix from a decoded
// request path, accepting both the versioned and legacy forms — the
// handler-side inverse of RoutePath.
func RouteName(path, prefix string) string {
	return strings.TrimPrefix(Unversioned(path), prefix)
}

// FormatCatalogVersion renders a catalog version as the
// CatalogVersionHeader value.
func FormatCatalogVersion(v uint64) string { return strconv.FormatUint(v, 10) }

// ParseCatalogVersion parses a CatalogVersionHeader value, reporting
// false for an absent or malformed header (clients treat either as
// "version unknown" and skip the sync).
func ParseCatalogVersion(raw string) (uint64, bool) {
	if raw == "" {
		return 0, false
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// JoinExclude renders an exclude list as the ExcludeHeader value.
func JoinExclude(refs []string) string { return strings.Join(refs, ",") }

// SplitExclude parses an ExcludeHeader value, dropping empty entries
// and surrounding whitespace.
func SplitExclude(raw string) []string {
	var out []string
	for _, ref := range strings.Split(raw, ",") {
		if ref = strings.TrimSpace(ref); ref != "" {
			out = append(out, ref)
		}
	}
	return out
}

package proto

// This file holds the typed JSON DTOs of the registry control plane —
// the messages edges, the registry, and clients marshal through. Both
// sides of every exchange use these types (relay.Registry's handlers
// decode them, the relay client helpers and internal/client encode
// them), so a field added or renamed here changes the whole cluster in
// one step.

// NodeInfo identifies one edge node in the cluster; it is the POST
// PathRegister body.
type NodeInfo struct {
	// ID names the node uniquely within the cluster.
	ID string `json:"id"`
	// URL is the node's advertised base URL, reachable by clients,
	// e.g. "http://10.0.0.2:8081".
	URL string `json:"url"`
}

// NodeStats is the load snapshot a node reports on each heartbeat.
type NodeStats struct {
	ActiveClients int64 `json:"activeClients"`
	ReservedBps   int64 `json:"reservedBps"`
	CapacityBps   int64 `json:"capacityBps"`
	PacketsSent   int64 `json:"packetsSent"`
	BytesSent     int64 `json:"bytesSent"`
	// InFlightBps is the summed declared bandwidth of the node's active
	// sessions — the primary balancing signal, since one rich DSL
	// session costs the uplink more than several modem sessions.
	InFlightBps int64 `json:"inFlightBps"`
}

// Load folds the snapshot into one comparable score, lower meaning less
// loaded — the contract half of the registry's balancing: a node
// reporting bandwidth in flight is scored on it, in megabits/s so one
// unit is roughly one rich session (and comparable to the +1 the
// registry adds per unheartbeated redirect); nodes that report no
// in-flight bandwidth fall back to their raw session count. Either
// way, a node enforcing an admission capacity adds the fraction of
// that capacity reserved, so of two otherwise-equal nodes the one
// closer to its budget ranks as more loaded.
func (s NodeStats) Load() float64 {
	var load float64
	if s.InFlightBps > 0 {
		load = float64(s.InFlightBps) / 1e6
	} else {
		load = float64(s.ActiveClients)
	}
	if s.CapacityBps > 0 {
		load += float64(s.ReservedBps) / float64(s.CapacityBps)
	}
	return load
}

// Node health labels reported in NodeStatus.Health.
const (
	// HealthAlive: within its heartbeat TTL and carrying no death mark;
	// eligible for redirects.
	HealthAlive = "alive"
	// HealthDead: a client reported a failed fetch, or the heartbeats
	// went silent past the TTL. Revived by the next heartbeat.
	HealthDead = "dead"
	// HealthDraining: the node deregistered for a graceful shutdown; it
	// finishes its in-flight sessions but takes no new redirects.
	// Revived only by an explicit re-registration.
	HealthDraining = "draining"
)

// NodeStatus is the externally visible state of one registered node,
// the GET PathNodes element type.
type NodeStatus struct {
	NodeInfo
	Stats NodeStats `json:"stats"`
	// Assigned is the number of redirects issued since the node's last
	// heartbeat.
	Assigned int64 `json:"assigned"`
	// Load is the score redirects are balanced on (lower wins).
	Load float64 `json:"load"`
	// Alive reports whether the node is eligible for redirects
	// (Health == HealthAlive).
	Alive bool `json:"alive"`
	// Dead reports an active death mark (failure report) that the next
	// heartbeat will clear.
	Dead bool `json:"dead,omitempty"`
	// Health folds liveness into one label: alive, dead, or draining.
	Health string `json:"health"`
	// HeartbeatAgeSec is how long ago the node last registered or
	// heartbeated, in seconds.
	HeartbeatAgeSec float64 `json:"heartbeatAgeSec"`
}

// HeartbeatMsg is the POST PathHeartbeat body: one node's load
// snapshot.
type HeartbeatMsg struct {
	ID    string    `json:"id"`
	Stats NodeStats `json:"stats"`
}

// FailureReport is the POST PathReportFailure body. Node names the
// failed edge by node ID, URL, or URL host — whichever the reporting
// client knows.
type FailureReport struct {
	Node string `json:"node"`
}

// DeregisterMsg is the POST PathDeregister body: a graceful removal
// for a draining node.
type DeregisterMsg struct {
	ID string `json:"id"`
}

// CatalogAsset is one published stored asset in the cluster catalog.
type CatalogAsset struct {
	Name string `json:"name"`
	// Rev is the catalog version at which this entry was last published.
	// A republish under the same name bumps it, which is what tells an
	// edge that a mirrored copy went stale even though the name is
	// unchanged.
	Rev uint64 `json:"rev"`
}

// CatalogGroup is one published multi-rate group in the cluster
// catalog. Variants lists its member asset names lean-to-rich.
type CatalogGroup struct {
	Name     string   `json:"name"`
	Variants []string `json:"variants"`
	Rev      uint64   `json:"rev"`
}

// Catalog is the GET PathCatalog body: the full published-content
// listing at one version. Version is the registry's catalog version
// (the CatalogVersionHeader value), which also moves on node-membership
// changes — so entries carry their own Rev and consumers diff on those,
// not on Version alone.
type Catalog struct {
	Version uint64         `json:"version"`
	Assets  []CatalogAsset `json:"assets"`
	Groups  []CatalogGroup `json:"groups"`
}

// PublishMsg is the POST PathCatalogPublish body. Exactly one of Asset
// or Group is set; the Rev fields are assigned by the registry and
// ignored on input.
type PublishMsg struct {
	Asset *CatalogAsset `json:"asset,omitempty"`
	Group *CatalogGroup `json:"group,omitempty"`
}

// UnpublishMsg is the POST PathCatalogUnpublish body. Exactly one of
// Asset or Group names the entry to remove.
type UnpublishMsg struct {
	Asset string `json:"asset,omitempty"`
	Group string `json:"group,omitempty"`
}

// RollbackMsg is the POST PathCatalogRollback body: Version names the
// on-disk catalog snapshot whose published content (assets and groups)
// is restored. Node membership is untouched, and the restore lands as
// a fresh mutation — the catalog version keeps growing. Only retained
// snapshots qualify; rolling back to a pruned version is a 404.
type RollbackMsg struct {
	Version uint64 `json:"version"`
}

package proto

import (
	"net/url"
	"strings"
	"testing"
	"time"
	"unicode/utf8"
)

// FuzzStreamNameRoundTrip drives arbitrary asset names through the path
// builder and back through the request-side decode, asserting the
// percent-encoding contract: any name — spaces, slashes, ?, #, comma
// soup — survives StreamPath → (URL parse) → SplitStreamPath intact,
// in both the legacy and the /v1 form.
func FuzzStreamNameRoundTrip(f *testing.F) {
	f.Add("lec-1")
	f.Add("week 1/intro")
	f.Add("a?b#c")
	f.Add("lecture%20hall")
	f.Add("日本語講義")
	f.Add("..")
	f.Fuzz(func(t *testing.T, name string) {
		if name == "" || !utf8.ValidString(name) {
			t.Skip("empty and non-UTF-8 names are not addressable assets")
		}
		for _, k := range []StreamKind{StreamVOD, StreamLive, StreamGroup, StreamFetch} {
			path := StreamPath(k, name)
			// The encoded path must parse as a URL path and decode back
			// to itself — that is what every handler sees after
			// net/http's URL parsing.
			decoded, err := url.PathUnescape(path)
			if err != nil {
				t.Fatalf("StreamPath(%v, %q) = %q does not unescape: %v", k, name, path, err)
			}
			gotKind, gotName, ok := SplitStreamPath(decoded)
			if !ok {
				t.Fatalf("SplitStreamPath(%q) not recognized (name %q)", decoded, name)
			}
			if gotKind != k || gotName != name {
				t.Fatalf("round trip = (%v, %q), want (%v, %q)", gotKind, gotName, k, name)
			}
			// The /v1 form must split identically.
			vKind, vName, vOK := SplitStreamPath(Versioned(decoded))
			if !vOK || vKind != k || vName != name {
				t.Fatalf("versioned round trip = (%v, %q, %v), want (%v, %q, true)", vKind, vName, vOK, k, name)
			}
		}
	})
}

// FuzzParseStart asserts ParseStart never panics, never returns a
// negative offset without an error, and always wraps rejections in a
// 400 *Error. Accepted values must survive the canonical FormatStart
// re-encode to millisecond precision.
func FuzzParseStart(f *testing.F) {
	f.Add("30s")
	f.Add("1500ms")
	f.Add("-5s")
	f.Add("")
	f.Add("9223372036854775807ns")
	f.Add("1h60m")
	f.Fuzz(func(t *testing.T, raw string) {
		at, err := ParseStart(raw)
		if err != nil {
			e, ok := err.(*Error)
			if !ok {
				t.Fatalf("ParseStart(%q) error %T, want *Error", raw, err)
			}
			if e.Status != 400 {
				t.Fatalf("ParseStart(%q) status %d, want 400", raw, e.Status)
			}
			return
		}
		if at < 0 {
			t.Fatalf("ParseStart(%q) = %v accepted a negative offset", raw, at)
		}
		back, err := ParseStart(FormatStart(at))
		if err != nil {
			t.Fatalf("canonical re-encode of %q rejected: %v", raw, err)
		}
		if back != at.Truncate(time.Millisecond) {
			t.Fatalf("FormatStart round trip of %q = %v, want %v", raw, back, at.Truncate(time.Millisecond))
		}
	})
}

// FuzzParseBandwidth asserts ParseBandwidth accepts exactly the
// positive decimal integers and wraps every rejection in a 400 *Error.
func FuzzParseBandwidth(f *testing.F) {
	f.Add("56000")
	f.Add("0")
	f.Add("-1")
	f.Add("9223372036854775808")
	f.Add("1e6")
	f.Add("")
	f.Fuzz(func(t *testing.T, raw string) {
		v, err := ParseBandwidth(raw)
		if err != nil {
			e, ok := err.(*Error)
			if !ok {
				t.Fatalf("ParseBandwidth(%q) error %T, want *Error", raw, err)
			}
			if e.Status != 400 {
				t.Fatalf("ParseBandwidth(%q) status %d, want 400", raw, e.Status)
			}
			return
		}
		if v <= 0 {
			t.Fatalf("ParseBandwidth(%q) = %d accepted a non-positive rate", raw, v)
		}
	})
}

// FuzzSplitExclude asserts the exclude-list codec's invariants: no
// empty or padded entries ever come out, and a JoinExclude of the split
// result re-splits to the same list (idempotent normalization).
func FuzzSplitExclude(f *testing.F) {
	f.Add("edge-1,edge-2")
	f.Add(" edge-1 , ,edge-2,")
	f.Add(",,,")
	f.Add("")
	f.Add("a\tb , c")
	f.Fuzz(func(t *testing.T, raw string) {
		refs := SplitExclude(raw)
		for _, ref := range refs {
			if ref == "" {
				t.Fatalf("SplitExclude(%q) produced an empty entry: %q", raw, refs)
			}
			if strings.TrimSpace(ref) != ref {
				t.Fatalf("SplitExclude(%q) produced padded entry %q", raw, ref)
			}
			if strings.Contains(ref, ",") {
				t.Fatalf("SplitExclude(%q) produced entry with separator: %q", raw, ref)
			}
		}
		again := SplitExclude(JoinExclude(refs))
		if len(again) != len(refs) {
			t.Fatalf("re-split of %q: %d entries, want %d", raw, len(again), len(refs))
		}
		for i := range refs {
			if again[i] != refs[i] {
				t.Fatalf("re-split of %q: entry %d = %q, want %q", raw, i, again[i], refs[i])
			}
		}
	})
}

package repro

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/loadgen"
)

// reportTopLevelKeys is every key a lod-bench/1 record must carry. The
// list is asserted against the raw JSON (not the decoded struct) so a
// field dropped from the writer — or renamed, silently orphaning the
// committed records — fails here rather than in a downstream consumer.
var reportTopLevelKeys = []string{
	"schema", "scenario", "description", "generatedAt", "goVersion", "numCPU",
	"goMaxProcs", "config", "wallSeconds", "sessions", "startupMs",
	"pacingJitterMs", "rebuffer", "throughput", "perf", "cluster",
}

// TestCommittedBenchRecordsMatchSchema golden-tests every BENCH_*.json
// at the repo root against the lod-bench/1 schema: strict decode (no
// unknown fields), the exact schema tag, all top-level keys present,
// and a populated perf block. Each committed record is a contract with
// whoever plots it; this is the regression net for the writer and the
// records drifting apart.
func TestCommittedBenchRecordsMatchSchema(t *testing.T) {
	paths, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no BENCH_*.json records found at the repo root")
	}
	for _, path := range paths {
		t.Run(path, func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			// Strict decode: a record with fields the current Report
			// doesn't know about was written by a different schema.
			dec := json.NewDecoder(bytes.NewReader(data))
			dec.DisallowUnknownFields()
			var rep loadgen.Report
			if err := dec.Decode(&rep); err != nil {
				t.Fatalf("strict decode: %v", err)
			}
			if rep.Schema != loadgen.ReportSchema {
				t.Fatalf("schema = %q, want %q", rep.Schema, loadgen.ReportSchema)
			}
			if rep.Scenario == "" || rep.GeneratedAt == "" || rep.GoVersion == "" {
				t.Fatalf("provenance fields missing: scenario=%q generatedAt=%q goVersion=%q",
					rep.Scenario, rep.GeneratedAt, rep.GoVersion)
			}
			if rep.NumCPU < 1 || rep.GoMaxProcs < 1 {
				t.Fatalf("cpu fields missing: numCPU=%d goMaxProcs=%d", rep.NumCPU, rep.GoMaxProcs)
			}
			if rep.WallSeconds <= 0 {
				t.Fatalf("wallSeconds = %v", rep.WallSeconds)
			}
			if rep.Sessions.Requested < 1 {
				t.Fatalf("sessions.requested = %d", rep.Sessions.Requested)
			}

			// The perf block is the PR-over-PR speed signal: every
			// scenario serves packets, so all four rates must be set.
			p := rep.Perf
			if p.PacketsPerSec <= 0 || p.BytesPerSec <= 0 || p.AllocsPerPacket <= 0 || p.NsPerPacket <= 0 {
				t.Fatalf("perf block not populated: %+v", p)
			}

			// Key presence on the raw document: zero-valued struct fields
			// decode fine, so the struct alone can't prove the writer
			// still emits every field.
			var raw map[string]json.RawMessage
			if err := json.Unmarshal(data, &raw); err != nil {
				t.Fatal(err)
			}
			for _, key := range reportTopLevelKeys {
				if _, ok := raw[key]; !ok {
					t.Errorf("top-level key %q missing", key)
				}
			}
			if len(raw) != len(reportTopLevelKeys) {
				t.Errorf("record has %d top-level keys, schema lists %d", len(raw), len(reportTopLevelKeys))
			}
		})
	}
}

package repro

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/loadgen"
)

// reportTopLevelKeys is every key a lod-bench/1 record must carry. The
// list is asserted against the raw JSON (not the decoded struct) so a
// field dropped from the writer — or renamed, silently orphaning the
// committed records — fails here rather than in a downstream consumer.
var reportTopLevelKeys = []string{
	"schema", "scenario", "description", "generatedAt", "goVersion", "numCPU",
	"goMaxProcs", "config", "wallSeconds", "sessions", "startupMs",
	"pacingJitterMs", "rebuffer", "throughput", "perf", "cluster",
}

// reportOptionalKeys are keys the current writer always emits but
// historical records legitimately lack. BENCH_fanout_before.json is the
// pre-zero-copy baseline of a before/after comparison — regenerating it
// with today's code would destroy the "before" — so keys added to the
// schema after it was frozen are optional on read, required on write
// (the sharded-merge golden and the record consistency checks below
// cover the writer side).
var reportOptionalKeys = map[string]bool{
	"shards": true, // added with the sharded load drivers (lodbench -shards)
	"cache":  true, // added with the popularity-aware edge cache (internal/edgecache)
}

// TestCommittedBenchRecordsMatchSchema golden-tests every BENCH_*.json
// at the repo root against the lod-bench/1 schema: strict decode (no
// unknown fields), the exact schema tag, all top-level keys present,
// and a populated perf block. Each committed record is a contract with
// whoever plots it; this is the regression net for the writer and the
// records drifting apart.
func TestCommittedBenchRecordsMatchSchema(t *testing.T) {
	paths, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no BENCH_*.json records found at the repo root")
	}
	for _, path := range paths {
		t.Run(path, func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			// Strict decode: a record with fields the current Report
			// doesn't know about was written by a different schema.
			dec := json.NewDecoder(bytes.NewReader(data))
			dec.DisallowUnknownFields()
			var rep loadgen.Report
			if err := dec.Decode(&rep); err != nil {
				t.Fatalf("strict decode: %v", err)
			}
			if rep.Schema != loadgen.ReportSchema {
				t.Fatalf("schema = %q, want %q", rep.Schema, loadgen.ReportSchema)
			}
			if rep.Scenario == "" || rep.GeneratedAt == "" || rep.GoVersion == "" {
				t.Fatalf("provenance fields missing: scenario=%q generatedAt=%q goVersion=%q",
					rep.Scenario, rep.GeneratedAt, rep.GoVersion)
			}
			if rep.NumCPU < 1 || rep.GoMaxProcs < 1 {
				t.Fatalf("cpu fields missing: numCPU=%d goMaxProcs=%d", rep.NumCPU, rep.GoMaxProcs)
			}
			if rep.WallSeconds <= 0 {
				t.Fatalf("wallSeconds = %v", rep.WallSeconds)
			}
			if rep.Sessions.Requested < 1 {
				t.Fatalf("sessions.requested = %d", rep.Sessions.Requested)
			}

			// The perf block is the PR-over-PR speed signal: every
			// scenario serves packets, so all four rates must be set.
			p := rep.Perf
			if p.PacketsPerSec <= 0 || p.BytesPerSec <= 0 || p.AllocsPerPacket <= 0 || p.NsPerPacket <= 0 {
				t.Fatalf("perf block not populated: %+v", p)
			}

			// Key presence on the raw document: zero-valued struct fields
			// decode fine, so the struct alone can't prove the writer
			// still emits every field.
			var raw map[string]json.RawMessage
			if err := json.Unmarshal(data, &raw); err != nil {
				t.Fatal(err)
			}
			for _, key := range reportTopLevelKeys {
				if _, ok := raw[key]; !ok {
					t.Errorf("top-level key %q missing", key)
				}
			}
			extra := len(raw) - len(reportTopLevelKeys)
			for key := range reportOptionalKeys {
				if _, ok := raw[key]; ok {
					extra--
				}
			}
			if extra != 0 {
				t.Errorf("record has %d top-level keys, schema lists %d required + %d optional",
					len(raw), len(reportTopLevelKeys), len(reportOptionalKeys))
			}

			// Records carrying the cache block must be self-consistent:
			// the hit rate mirrors the cluster block, per-asset entries
			// are sorted by demand and bounded to the top-K, and no
			// asset's worst-edge pull count exceeds its total pulls.
			if _, ok := raw["cache"]; ok {
				c := rep.Cache
				if c == nil {
					t.Fatal("cache key present but block decoded nil")
				}
				if c.Policy != "tinylfu" && c.Policy != "lru" {
					t.Errorf("cache.policy = %q, want tinylfu or lru", c.Policy)
				}
				if diff := c.HitRate - rep.Cluster.CacheHitRate; diff > 1e-9 || diff < -1e-9 {
					t.Errorf("cache.hitRate = %v, cluster.cacheHitRate = %v", c.HitRate, rep.Cluster.CacheHitRate)
				}
				if len(c.PerAsset) > 10 {
					t.Errorf("cache.perAsset has %d entries, top-K is 10", len(c.PerAsset))
				}
				for i, a := range c.PerAsset {
					if a.Name == "" {
						t.Errorf("cache.perAsset[%d] has no name", i)
					}
					if a.MaxEdgePulls > a.Pulls {
						t.Errorf("cache.perAsset[%d] %s: maxEdgePulls %d > pulls %d",
							i, a.Name, a.MaxEdgePulls, a.Pulls)
					}
					if i > 0 {
						prev := c.PerAsset[i-1]
						if prev.Hits+prev.Pulls < a.Hits+a.Pulls {
							t.Errorf("cache.perAsset not sorted by demand at %d: %d < %d",
								i, prev.Hits+prev.Pulls, a.Hits+a.Pulls)
						}
					}
				}
			}

			// Records carrying the shards block must be self-consistent:
			// the block mirrors config.shards, covers the whole
			// population, and its totals reconcile with the sessions
			// block — the cross-check that the sharded merge did not
			// drop or double-count anyone.
			if _, ok := raw["shards"]; ok {
				if rep.Config.Shards != len(rep.Shards) {
					t.Errorf("config.shards = %d but shards block has %d entries",
						rep.Config.Shards, len(rep.Shards))
				}
				clients, completed, failed := 0, 0, 0
				for i, sh := range rep.Shards {
					if sh.Index != i {
						t.Errorf("shards[%d].index = %d, want sorted order", i, sh.Index)
					}
					if sh.WallSeconds <= 0 {
						t.Errorf("shards[%d].wallSeconds = %v", i, sh.WallSeconds)
					}
					clients += sh.Clients
					completed += sh.Completed
					failed += sh.Failed
				}
				if clients != rep.Sessions.Requested {
					t.Errorf("shard clients sum to %d, sessions.requested = %d",
						clients, rep.Sessions.Requested)
				}
				if completed != rep.Sessions.Completed || failed != rep.Sessions.Failed {
					t.Errorf("shard totals %d completed / %d failed, sessions block %d / %d",
						completed, failed, rep.Sessions.Completed, rep.Sessions.Failed)
				}
				// redirectsPerSec rides the same window as wallSeconds.
				want := rep.Cluster.Redirects / rep.WallSeconds
				if diff := rep.Cluster.RedirectsPerSec - want; diff > 1e-6 || diff < -1e-6 {
					t.Errorf("cluster.redirectsPerSec = %v, want redirects/wall = %v",
						rep.Cluster.RedirectsPerSec, want)
				}
			}
		})
	}
}

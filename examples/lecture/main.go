// Lecture: the full §3 workflow on disk, exactly as the paper's publishing
// manager form describes — fill in the path of the video file and the
// directory of the presented slides, publish, then replay the lecture at
// several content-tree abstraction levels.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/player"
	"repro/internal/publish"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	workDir, err := os.MkdirTemp("", "wmps-lecture-")
	if err != nil {
		return err
	}
	defer func() {
		_ = os.RemoveAll(workDir)
	}()

	// Record a 60-second lecture with 12 slides and annotations, and
	// materialize it as the raw publishing inputs: video.asf + slides/.
	profile, err := codec.ByName("dsl-300k")
	if err != nil {
		return err
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title:           "Distributed Multimedia Presentation Systems",
		Duration:        60 * time.Second,
		Profile:         profile,
		SlideCount:      12,
		AnnotationEvery: 15 * time.Second,
		Seed:            42,
	})
	if err != nil {
		return err
	}
	paths, err := publish.WriteRawLecture(lec, workDir)
	if err != nil {
		return err
	}
	fmt.Printf("raw recording: video=%s slides=%s\n", paths.VideoPath, paths.SlidesDir)

	// The Fig 5(a) form: video path + slides directory -> published asset.
	out := filepath.Join(workDir, "published.asf")
	res, err := publish.Publish(publish.Request{
		Title:      lec.Title,
		VideoPath:  paths.VideoPath,
		SlidesDir:  paths.SlidesDir,
		OutputPath: out,
	})
	if err != nil {
		return err
	}
	fmt.Printf("published: %d slides synchronized with %d script commands\n",
		res.Slides, res.Scripts)

	// The Fig 6 content tree gives the lecture at several lengths: the
	// level-q extraction is a shorter or longer presentation.
	fmt.Println("\nabstraction levels (the Abstractor of §2.2):")
	for q := 0; q <= res.Tree.HighestLevel(); q++ {
		fmt.Printf("  level %d: %v — segments %v\n",
			q, res.Tree.PresentationTime(q), res.Tree.ExtractLevelIDs(q))
	}

	// The Fig 5(b) replay: verify every slide appears at its time.
	f, err := os.Open(out)
	if err != nil {
		return err
	}
	defer func() {
		_ = f.Close()
	}()
	m, err := player.New(player.Options{}).Play(f)
	if err != nil {
		return err
	}
	fmt.Printf("\nreplay: %d frames (%d decodable), %d slide flips, %d annotations\n",
		m.VideoFrames, m.Decodable, m.SlidesShown, m.Annotations)
	for _, e := range m.SlideEvents() {
		fmt.Printf("  %v  %s\n", e.PTS, e.Param)
	}
	return nil
}

// Classroom: the distributed distance-learning scenario of the paper's
// abstract — a teacher broadcasts a live lecture over HTTP; many students
// who "cannot attend the presentation" join the channel (including one on
// a degraded network), contend for the floor, and exchange annotations.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/encoder"
	"repro/internal/netsim"
	"repro/internal/player"
	"repro/internal/proto"
	"repro/internal/session"
	"repro/internal/streaming"
)

const studentCount = 8

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// --- The live lecture, encoded for modem-class students. ---
	profile, err := codec.ByName("modem-56k")
	if err != nil {
		return err
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title:           "Live: Implementing Distributed LOD Systems",
		Duration:        10 * time.Second,
		Profile:         profile,
		SlideCount:      5,
		AnnotationEvery: 4 * time.Second,
		Seed:            7,
	})
	if err != nil {
		return err
	}
	var encoded bytesBuffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{Live: true}, &encoded); err != nil {
		return err
	}
	packets, header, err := decodeAll(encoded.Bytes())
	if err != nil {
		return err
	}

	// --- The streaming server with one live channel. ---
	server := streaming.NewServer(nil)
	channel, err := server.CreateChannel("lecture-hall", header)
	if err != nil {
		return err
	}
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()
	fmt.Printf("server up at %s, broadcasting %q\n", ts.URL, lec.Title)

	// --- Students join over HTTP; their players run concurrently. ---
	var wg sync.WaitGroup
	results := make([]*player.Metrics, studentCount)
	errs := make([]error, studentCount)
	for i := 0; i < studentCount; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			pl := player.New(player.Options{})
			m, err := pl.PlayURL(ctx, ts.URL+proto.StreamPath(proto.StreamLive, "lecture-hall"))
			results[id], errs[id] = m, err
		}(i)
	}

	// Wait for everyone to attach, then broadcast all packets unpaced (a
	// real deployment would use channel.PublishPaced with the wall clock).
	for channel.ClientCount() < studentCount {
		time.Sleep(time.Millisecond)
	}
	if err := channel.PublishPaced(ctx, instantClock{}, packets); err != nil {
		return err
	}
	channel.Close()
	wg.Wait()

	delivered := 0
	for i, m := range results {
		if errs[i] != nil {
			return fmt.Errorf("student %d: %w", i, errs[i])
		}
		if m.SlidesShown == len(lec.Slides) {
			delivered++
		}
	}
	fmt.Printf("%d/%d students received every slide flip in the live stream\n",
		delivered, studentCount)

	// --- One student is on a lossy modem link: measure the degradation. ---
	degraded, err := core.RunEndToEnd(core.E2EConfig{
		Lecture: capture.LectureConfig{
			Title: lec.Title, Duration: 10 * time.Second, Profile: profile,
			SlideCount: 5, Seed: 7,
		},
		Link:         netsim.LinkLossyWiFi,
		StartupDelay: time.Second,
		LeadTime:     time.Second,
	})
	if err != nil {
		return err
	}
	fmt.Printf("degraded-network student: %.0f%% of frames decodable, max skew %v, %d lost packets\n",
		degraded.DecodableFrac*100, degraded.MaxSkew.Truncate(time.Millisecond), degraded.Lost)

	// --- Floor control: students ask questions during the lecture. ---
	class := session.NewClassroom("lecture-hall", nil)
	if _, err := class.Join("teacher", session.RoleTeacher); err != nil {
		return err
	}
	students := make([]*session.Attendee, studentCount)
	for i := range students {
		a, err := class.Join(fmt.Sprintf("student%02d", i), session.RoleStudent)
		if err != nil {
			return err
		}
		students[i] = a
	}
	if err := class.Annotate("teacher", "welcome to the live session"); err != nil {
		return err
	}
	// Three students raise their hands; the floor rotates FIFO.
	for _, s := range []string{"student03", "student01", "student05"} {
		if _, err := class.Floor.Request(s); err != nil {
			return err
		}
	}
	for class.Floor.Holder() != "" {
		holder := class.Floor.Holder()
		if err := class.Annotate(holder, "question from "+holder); err != nil {
			return err
		}
		if err := class.Floor.Release(holder); err != nil {
			return err
		}
	}
	if err := class.Floor.VerifyAgainstModel(); err != nil {
		return fmt.Errorf("floor trace deviates from the Petri-net model: %w", err)
	}
	fmt.Printf("floor control: %d annotations broadcast, trace verified against the Petri-net model\n",
		len(class.History()))
	class.Close()
	return nil
}

// decodeAll splits an encoded container into header + packets.
func decodeAll(data []byte) ([]asf.Packet, asf.Header, error) {
	h, pkts, _, err := asf.ReadAll(newBytesReader(data))
	return pkts, h, err
}

package main

import (
	"bytes"
	"io"
	"time"

	"repro/internal/vclock"
)

// bytesBuffer aliases bytes.Buffer for the example's readability.
type bytesBuffer = bytes.Buffer

func newBytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

// instantClock satisfies vclock.Clock but never blocks, so the example's
// broadcast completes immediately while exercising the paced code path.
type instantClock struct{}

var _ vclock.Clock = instantClock{}

func (instantClock) Now() time.Time { return time.Unix(0, 0) }

func (instantClock) After(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- time.Unix(0, 0)
	return ch
}

func (instantClock) Sleep(time.Duration) {}

// Quickstart: the minimal WMPS loop — record a short lecture, publish it,
// and replay it, printing what the student would see.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/player"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	workDir, err := os.MkdirTemp("", "wmps-quickstart-")
	if err != nil {
		return err
	}
	defer func() {
		_ = os.RemoveAll(workDir)
	}()

	sys := core.NewSystem(nil)

	// 1. Record: the teacher gives a 20-second lecture with 4 slides.
	profile, err := codec.ByName("dsl-300k")
	if err != nil {
		return err
	}
	lec, err := sys.RecordLecture(capture.LectureConfig{
		Title:           "Quickstart: Petri nets in 20 seconds",
		Duration:        20 * time.Second,
		Profile:         profile,
		SlideCount:      4,
		AnnotationEvery: 8 * time.Second,
		Seed:            1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("recorded %q: %d video frames, %d audio blocks, %d slides\n",
		lec.Title, len(lec.Video), len(lec.Audio), len(lec.Slides))

	// 2. Publish: synchronize video and slides with script commands.
	res, err := sys.PublishLecture(lec, workDir, "quickstart")
	if err != nil {
		return err
	}
	fmt.Printf("published %s (%d script commands)\n", res.AssetPath, res.Scripts)
	fmt.Println("content tree:")
	fmt.Print(res.Tree.String())

	// 3. Replay: a student watches the lecture on demand.
	m, err := sys.Replay("quickstart", player.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("replayed: %d frames, %d slide flips, %d annotations\n",
		m.VideoFrames, m.SlidesShown, m.Annotations)
	for _, e := range m.SlideEvents() {
		fmt.Printf("  slide %q shown at %v\n", e.Param, e.PTS)
	}
	return nil
}

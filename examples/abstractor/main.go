// Abstractor: the §2.2 "flexible teaching material" in action. A student
// with limited time first watches the level-1 summary of a published
// lecture, then uses interactive controls (seek, driven by the content
// tree) to jump into the full level-2 material for one section.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/encoder"
	"repro/internal/player"
	"repro/internal/publish"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	profile, err := codec.ByName("modem-56k")
	if err != nil {
		return err
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title:      "Graph Algorithms in 60 Seconds",
		Duration:   60 * time.Second,
		Profile:    profile,
		SlideCount: 9,
		Seed:       3,
	})
	if err != nil {
		return err
	}

	// The content tree organizes the lecture into abstraction levels.
	tree, err := publish.BuildContentTree(lec.Title, lec.Slides, lec.Duration, 0)
	if err != nil {
		return err
	}
	fmt.Println("content tree of the lecture:")
	fmt.Print(tree.String())
	for q := 0; q <= tree.HighestLevel(); q++ {
		fmt.Printf("level %d presentation: %v — %v\n",
			q, tree.PresentationTime(q), tree.ExtractLevelIDs(q))
	}

	// Encode the full lecture once.
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{}, &buf); err != nil {
		return err
	}
	header, packets, index, err := load(buf.Bytes())
	if err != nil {
		return err
	}

	// The student plays the summary: watch the first 10 s of each level-1
	// section by seeking section-to-section. Section heads are the level-1
	// extraction of the tree.
	fmt.Println("\nsummary viewing session (10 s per section):")
	var controls []player.Control
	wall := 10 * time.Second
	for _, node := range tree.ExtractLevel(1)[1:] { // skip the intro (plays from 0)
		slide, ok := lec.SlideAt(slideTime(lec, node.ID))
		if !ok {
			continue
		}
		controls = append(controls, player.Control{
			Kind: player.CtlSeek, At: wall, Target: slide.At,
		})
		wall += 10 * time.Second
	}
	res, err := player.RunSession(header, packets, index, controls)
	if err != nil {
		return err
	}
	fmt.Printf("  %d seeks, %d events presented, session ended at wall %v (full lecture is %v)\n",
		res.Seeks, len(res.Events), res.EndedAt, lec.Duration)
	for _, f := range res.SlideFlips {
		fmt.Printf("  wall %-6v slide@%v\n", f.Wall, f.PTS)
	}

	// Then a deep dive: replay one section in full, pausing to take notes.
	fmt.Println("\ndeep-dive session on section 2 with a note-taking pause:")
	deep, err := player.RunSession(header, packets, index, []player.Control{
		{Kind: player.CtlSeek, At: 0, Target: 20 * time.Second},
		{Kind: player.CtlPause, At: 8 * time.Second},
		{Kind: player.CtlResume, At: 12 * time.Second},
	})
	if err != nil {
		return err
	}
	fmt.Printf("  paused %v, %d events, wall timeline ordered: %v\n",
		deep.TotalPaused, len(deep.Events), deep.EventsInWallOrder())
	return nil
}

// slideTime finds the display time of the slide backing a tree node.
func slideTime(lec *capture.Lecture, nodeID string) time.Duration {
	for _, s := range lec.Slides {
		if s.Name == nodeID {
			return s.At
		}
	}
	return 0
}

// load splits an encoded container into header, packets, and index.
func load(data []byte) (asf.Header, []asf.Packet, asf.Index, error) {
	return asf.ReadAll(bytes.NewReader(data))
}

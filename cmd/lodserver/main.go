// Command lodserver runs the Lecture-on-Demand streaming server: stored
// assets are served at /vod/{name}, live channels at /live/{channel}, with
// JSON listings at /assets and /channels.
//
// Usage:
//
//	lodserver -addr :8080 -asset lecture1=published.asf
//	lodserver -addr :8080 -demo            # generate and serve a demo asset
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/encoder"
	"repro/internal/streaming"
)

// assetFlags collects repeated -asset name=path flags.
type assetFlags map[string]string

func (a assetFlags) String() string { return fmt.Sprintf("%v", map[string]string(a)) }

func (a assetFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	a[parts[0]] = parts[1]
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lodserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lodserver", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	demo := fs.Bool("demo", false, "register a generated demo asset as 'demo'")
	pacing := fs.Bool("pacing", true, "pace VOD packets by their send times")
	assets := assetFlags{}
	fs.Var(assets, "asset", "register a stored asset, name=path (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := streaming.NewServer(nil)
	srv.Pacing = *pacing

	for name, path := range assets {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("open asset %s: %w", name, err)
		}
		_, err = srv.RegisterAsset(name, asf.NewReader(bufio.NewReader(f)))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("register %s: %w", name, err)
		}
		fmt.Printf("registered asset %q from %s\n", name, path)
	}

	if *demo {
		if err := registerDemo(srv); err != nil {
			return err
		}
		fmt.Println("registered generated asset \"demo\"")
	}

	fmt.Printf("LOD server listening on %s (assets: %v)\n", *addr, srv.AssetNames())
	return http.ListenAndServe(*addr, srv.Handler())
}

func registerDemo(srv *streaming.Server) error {
	profile, err := codec.ByName("dsl-300k")
	if err != nil {
		return err
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "Demo lecture", Duration: 60 * time.Second, Profile: profile,
		SlideCount: 12, AnnotationEvery: 20 * time.Second, Seed: 2002,
	})
	if err != nil {
		return err
	}
	pr, pw := newPipe()
	errc := make(chan error, 1)
	go func() {
		_, err := encoder.EncodeLecture(lec, encoder.Config{LeadTime: time.Second}, pw)
		pw.CloseWithError(err)
		errc <- err
	}()
	if _, err := srv.RegisterAsset("demo", asf.NewReader(pr)); err != nil {
		return err
	}
	return <-errc
}

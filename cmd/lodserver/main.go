// Command lodserver runs the Lecture-on-Demand streaming server: stored
// assets are served at /v1/vod/{name}, live channels at
// /v1/live/{channel}, with JSON listings at /v1/assets and /v1/channels,
// and whole-container mirror transfers at /v1/fetch/{name}. Every
// endpoint also answers on its legacy unversioned alias (/vod/...); the
// route constants live in internal/proto.
//
// The server can run standalone or as part of a distributed origin→edge
// cluster (internal/relay):
//
//	lodserver -addr :8080 -asset lecture1=published.asf
//	lodserver -addr :8080 -demo              # generate and serve a demo asset
//
//	# origin that also hosts the cluster registry on :9090
//	lodserver -addr :8080 -demo -registry :9090
//
//	# edge pulling through from the origin, registered with the registry,
//	# mirroring at most 256 MiB of assets (LRU eviction beyond that)
//	lodserver -addr :8081 -origin http://origin:8080 \
//	    -edge http://edge1:8081 -registry http://origin:9090 \
//	    -cache-bytes 268435456
//
// Clients then connect to the registry's /vod/... and /live/... URLs and
// are 307-redirected to the least-loaded edge.
//
// Every role serves GET /metrics (Prometheus text) and GET /status
// (JSON snapshot) on its listener unless -metrics=false; the registry
// listener exposes its own counters the same way. See internal/metrics.
//
// On SIGINT/SIGTERM the server shuts down gracefully: a node registered
// with a registry deregisters first (so no new client is redirected at
// it), then refuses new sessions and drains in-flight ones for up to
// -drain before exiting. Clients of a node that dies without draining
// fail over through the registry instead (see internal/relay).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/catalog"
	"repro/internal/codec"
	"repro/internal/edgecache"
	"repro/internal/encoder"
	"repro/internal/relay"
	"repro/internal/streaming"
)

// assetFlags collects repeated -asset name=path flags.
type assetFlags map[string]string

func (a assetFlags) String() string { return fmt.Sprintf("%v", map[string]string(a)) }

func (a assetFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	a[parts[0]] = parts[1]
	return nil
}

// config is the parsed, validated command line.
type config struct {
	addr         string
	demo         bool
	pacing       bool
	assets       assetFlags
	capacity     int64
	origin       string // non-empty: run as an edge of this origin
	edgeURL      string // advertised URL for registry registration
	registry     string // URL → register with it; listen address → host it
	stateDir     string // non-empty: hosted registry persists its state here
	heartbeat    time.Duration
	metricsOn    bool
	pprofOn      bool
	cacheBytes   int64
	cachePolicy  string
	cachePrewarm int
	drain        time.Duration
}

// hostsRegistry reports whether -registry names a listen address to serve
// a registry on (as opposed to a remote registry URL to register with).
func (c *config) hostsRegistry() bool {
	return c.registry != "" && !strings.Contains(c.registry, "://")
}

func parseConfig(args []string) (*config, error) {
	c := &config{assets: assetFlags{}}
	fs := flag.NewFlagSet("lodserver", flag.ContinueOnError)
	fs.StringVar(&c.addr, "addr", ":8080", "listen address")
	fs.BoolVar(&c.demo, "demo", false, "register a generated demo asset as 'demo'")
	fs.BoolVar(&c.pacing, "pacing", true, "pace VOD packets by their send times")
	fs.Var(c.assets, "asset", "register a stored asset, name=path (repeatable)")
	fs.Int64Var(&c.capacity, "capacity-bps", 0, "admission-control uplink capacity in bits/s (0 = unlimited)")
	fs.StringVar(&c.origin, "origin", "", "origin base URL; serve as an edge relaying live channels and mirroring assets from it")
	fs.StringVar(&c.edgeURL, "edge", "", "advertised base URL of this node, required when registering with a registry")
	fs.StringVar(&c.registry, "registry", "", `cluster registry: a URL ("http://host:9090") registers this node with it, a listen address (":9090") hosts a registry there`)
	fs.StringVar(&c.stateDir, "state-dir", "", "directory where a hosted registry persists node membership and the content catalog; restored on restart (requires hosting the registry)")
	fs.DurationVar(&c.heartbeat, "heartbeat", 5*time.Second, "registry heartbeat interval")
	fs.BoolVar(&c.metricsOn, "metrics", true, "serve GET /metrics and GET /status on every role's listener")
	fs.BoolVar(&c.pprofOn, "pprof", false, "serve net/http/pprof under /debug/pprof/ on the main listener (profile a live node without restarting it)")
	fs.Int64Var(&c.cacheBytes, "cache-bytes", 0, "edge mirror cache capacity in payload bytes (0 = unbounded; requires -origin)")
	fs.StringVar(&c.cachePolicy, "cache-policy", "tinylfu", `edge mirror cache policy: "tinylfu" (frequency-gated admission) or "lru" (recency only; requires -origin)`)
	fs.IntVar(&c.cachePrewarm, "cache-prewarm", 12, "sketch-frequency threshold (1-15) at which an edge prefetches a hot asset's rate-group siblings; 0 disables prewarm (requires -origin)")
	fs.DurationVar(&c.drain, "drain", 10*time.Second, "how long to let in-flight sessions finish on SIGINT/SIGTERM before exiting")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if c.drain < 0 {
		return nil, fmt.Errorf("-drain must be >= 0, got %v", c.drain)
	}
	if c.registry != "" && !c.hostsRegistry() && c.edgeURL == "" {
		return nil, fmt.Errorf("-registry %s needs -edge with this node's advertised URL", c.registry)
	}
	if c.origin != "" && (c.demo || len(c.assets) > 0) {
		return nil, fmt.Errorf("an edge (-origin) mirrors origin assets; drop -demo/-asset")
	}
	if c.cacheBytes < 0 {
		return nil, fmt.Errorf("-cache-bytes must be >= 0, got %d", c.cacheBytes)
	}
	if c.cacheBytes > 0 && c.origin == "" {
		return nil, fmt.Errorf("-cache-bytes bounds the edge mirror cache; it requires -origin")
	}
	switch c.cachePolicy {
	case "tinylfu", "lru":
	default:
		return nil, fmt.Errorf(`-cache-policy must be "tinylfu" or "lru", got %q`, c.cachePolicy)
	}
	if c.cachePrewarm < 0 || c.cachePrewarm > 15 {
		return nil, fmt.Errorf("-cache-prewarm is a 4-bit sketch frequency (0-15), got %d", c.cachePrewarm)
	}
	if c.stateDir != "" && !c.hostsRegistry() {
		return nil, fmt.Errorf(`-state-dir persists registry state; it requires -registry with a listen address (":9090")`)
	}
	return c, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lodserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	c, err := parseConfig(args)
	if err != nil {
		return err
	}

	srv := streaming.NewServer(nil)
	srv.Pacing = c.pacing
	if c.capacity > 0 {
		srv.Admission = streaming.NewAdmission(c.capacity)
	}

	for name, path := range c.assets {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("open asset %s: %w", name, err)
		}
		_, err = srv.RegisterAsset(name, asf.NewReader(bufio.NewReader(f)))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("register %s: %w", name, err)
		}
		fmt.Printf("registered asset %q from %s\n", name, path)
	}

	if c.demo {
		if err := registerDemo(srv); err != nil {
			return err
		}
		fmt.Println("registered generated asset \"demo\"")
	}

	handler := http.Handler(nil)
	var edge *relay.Edge
	if c.origin != "" {
		edge = relay.NewEdge(c.origin, srv)
		edge.CacheBytes = c.cacheBytes
		edge.ConfigureCache(edgecache.Config{
			Policy:           edgecache.Policy(c.cachePolicy),
			PrewarmThreshold: c.cachePrewarm,
		})
		handler = edge.Handler()
		fmt.Printf("edge mode: pulling through from origin %s\n", c.origin)
		if c.cacheBytes > 0 {
			fmt.Printf("edge mirror cache bounded at %d bytes (%s admission)\n", c.cacheBytes, c.cachePolicy)
		}
	} else {
		handler = srv.Handler()
	}
	if c.metricsOn || c.pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		if c.metricsOn {
			srv.Metrics().Expose(mux)
		}
		if c.pprofOn {
			// Mounted explicitly rather than via DefaultServeMux so the
			// debug surface exists only when asked for.
			mux.HandleFunc("/debug/pprof/", netpprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
			fmt.Printf("pprof serving on %s/debug/pprof/\n", c.addr)
		}
		handler = mux
	}

	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	errc := make(chan error, 2)
	if c.hostsRegistry() {
		store, err := catalog.Open(c.stateDir)
		if err != nil {
			return fmt.Errorf("open -state-dir: %w", err)
		}
		reg := relay.NewRegistryWithStore(nil, store)
		if c.stateDir != "" {
			fmt.Printf("registry state persisted under %s (restored version %d)\n",
				c.stateDir, reg.CatalogVersion())
		}
		regHandler := http.Handler(reg.Handler())
		if c.metricsOn {
			mux := http.NewServeMux()
			mux.Handle("/", regHandler)
			reg.Metrics().Expose(mux)
			regHandler = mux
		}
		fmt.Printf("cluster registry listening on %s\n", c.registry)
		go func() { errc <- http.ListenAndServe(c.registry, regHandler) }()
	} else if c.registry != "" {
		hb := &relay.Heartbeats{
			Registry: c.registry,
			Info:     relay.NodeInfo{ID: c.edgeURL, URL: c.edgeURL},
			Snapshot: func() relay.NodeStats { return relay.SnapshotStats(srv) },
			Interval: c.heartbeat,
		}
		if edge != nil {
			// Heartbeat answers carry the registry's catalog version; when
			// it moves, re-fetch the catalog and invalidate stale mirrors.
			hb.OnCatalog = func(uint64) {
				if err := edge.SyncCatalogFrom(nil, c.registry); err != nil {
					fmt.Fprintln(os.Stderr, "lodserver: catalog sync:", err)
				}
			}
		}
		fmt.Printf("registering %s with registry %s\n", c.edgeURL, c.registry)
		go func() { errc <- hb.Run(sigCtx) }()
	}

	fmt.Printf("LOD server listening on %s (assets: %v)\n", c.addr, srv.AssetNames())
	go func() { errc <- http.ListenAndServe(c.addr, handler) }()
	select {
	case err := <-errc:
		if sigCtx.Err() != nil {
			break // heartbeat loop reporting the signal cancellation
		}
		return err
	case <-sigCtx.Done():
	}
	return shutdown(c, srv)
}

// shutdown is the graceful exit: tell the registry first so no new
// client is redirected here, then refuse new sessions and let in-flight
// ones finish. Clients cut off anyway (drain deadline passed) fail over
// through the registry.
func shutdown(c *config, srv *streaming.Server) error {
	if c.registry != "" && !c.hostsRegistry() {
		fmt.Printf("deregistering %s from registry %s\n", c.edgeURL, c.registry)
		if err := relay.Deregister(nil, c.registry, c.edgeURL); err != nil {
			fmt.Fprintln(os.Stderr, "lodserver: deregister:", err)
		}
	}
	if c.drain <= 0 {
		return nil
	}
	fmt.Printf("draining sessions for up to %v\n", c.drain)
	ctx, cancel := context.WithTimeout(context.Background(), c.drain)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "lodserver:", err)
	}
	return nil
}

func registerDemo(srv *streaming.Server) error {
	profile, err := codec.ByName("dsl-300k")
	if err != nil {
		return err
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "Demo lecture", Duration: 60 * time.Second, Profile: profile,
		SlideCount: 12, AnnotationEvery: 20 * time.Second, Seed: 2002,
	})
	if err != nil {
		return err
	}
	pr, pw := newPipe()
	errc := make(chan error, 1)
	go func() {
		_, err := encoder.EncodeLecture(lec, encoder.Config{LeadTime: time.Second}, pw)
		pw.CloseWithError(err)
		errc <- err
	}()
	if _, err := srv.RegisterAsset("demo", asf.NewReader(pr)); err != nil {
		return err
	}
	return <-errc
}

package main

import (
	"testing"

	"repro/internal/streaming"
)

func TestRegisterDemo(t *testing.T) {
	srv := streaming.NewServer(nil)
	if err := registerDemo(srv); err != nil {
		t.Fatalf("registerDemo: %v", err)
	}
	a, ok := srv.Asset("demo")
	if !ok {
		t.Fatal("demo asset not registered")
	}
	if a.Header.Title != "Demo lecture" || len(a.Packets) == 0 {
		t.Fatalf("demo asset malformed: %q, %d packets", a.Header.Title, len(a.Packets))
	}
}

func TestAssetFlagParsing(t *testing.T) {
	flags := assetFlags{}
	if err := flags.Set("name=path.asf"); err != nil {
		t.Fatal(err)
	}
	if flags["name"] != "path.asf" {
		t.Fatalf("flags = %v", flags)
	}
	for _, bad := range []string{"nopath", "=x", "y="} {
		if err := flags.Set(bad); err == nil {
			t.Errorf("bad flag %q accepted", bad)
		}
	}
	if flags.String() == "" {
		t.Error("String() empty")
	}
}

func TestRunRejectsMissingAssetFile(t *testing.T) {
	if err := run([]string{"-addr", "127.0.0.1:0", "-asset", "x=/does/not/exist"}); err == nil {
		t.Fatal("missing asset file accepted")
	}
}

package main

import (
	"testing"
	"time"

	"repro/internal/streaming"
)

func TestRegisterDemo(t *testing.T) {
	srv := streaming.NewServer(nil)
	if err := registerDemo(srv); err != nil {
		t.Fatalf("registerDemo: %v", err)
	}
	a, ok := srv.Asset("demo")
	if !ok {
		t.Fatal("demo asset not registered")
	}
	if a.Header.Title != "Demo lecture" || len(a.Packets) == 0 {
		t.Fatalf("demo asset malformed: %q, %d packets", a.Header.Title, len(a.Packets))
	}
}

func TestAssetFlagParsing(t *testing.T) {
	flags := assetFlags{}
	if err := flags.Set("name=path.asf"); err != nil {
		t.Fatal(err)
	}
	if flags["name"] != "path.asf" {
		t.Fatalf("flags = %v", flags)
	}
	for _, bad := range []string{"nopath", "=x", "y="} {
		if err := flags.Set(bad); err == nil {
			t.Errorf("bad flag %q accepted", bad)
		}
	}
	if flags.String() == "" {
		t.Error("String() empty")
	}
}

func TestRunRejectsMissingAssetFile(t *testing.T) {
	if err := run([]string{"-addr", "127.0.0.1:0", "-asset", "x=/does/not/exist"}); err == nil {
		t.Fatal("missing asset file accepted")
	}
}

func TestParseConfigClusterFlags(t *testing.T) {
	// Registering with a remote registry requires an advertised edge URL.
	if _, err := parseConfig([]string{"-registry", "http://reg:9090"}); err == nil {
		t.Fatal("registry URL without -edge accepted")
	}
	// Edges mirror origin content; local asset flags conflict.
	if _, err := parseConfig([]string{"-origin", "http://origin:8080", "-demo"}); err == nil {
		t.Fatal("-origin with -demo accepted")
	}

	c, err := parseConfig([]string{
		"-origin", "http://origin:8080",
		"-edge", "http://edge1:8081",
		"-registry", "http://origin:9090",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.hostsRegistry() {
		t.Fatal("registry URL misread as a listen address")
	}

	c, err = parseConfig([]string{"-demo", "-registry", ":9090", "-capacity-bps", "1000000"})
	if err != nil {
		t.Fatal(err)
	}
	if !c.hostsRegistry() {
		t.Fatal("listen address misread as a registry URL")
	}
	if c.capacity != 1_000_000 {
		t.Fatalf("capacity = %d", c.capacity)
	}
}

func TestParseConfigCacheAndMetricsFlags(t *testing.T) {
	// The mirror cache bound only makes sense on an edge.
	if _, err := parseConfig([]string{"-cache-bytes", "1024"}); err == nil {
		t.Fatal("-cache-bytes without -origin accepted")
	}
	if _, err := parseConfig([]string{"-origin", "http://o:8080", "-cache-bytes", "-1"}); err == nil {
		t.Fatal("negative -cache-bytes accepted")
	}

	c, err := parseConfig([]string{"-origin", "http://o:8080", "-cache-bytes", "4096"})
	if err != nil {
		t.Fatal(err)
	}
	if c.cacheBytes != 4096 {
		t.Fatalf("cacheBytes = %d", c.cacheBytes)
	}
	if !c.metricsOn {
		t.Fatal("metrics should default on")
	}

	c, err = parseConfig([]string{"-metrics=false"})
	if err != nil {
		t.Fatal(err)
	}
	if c.metricsOn {
		t.Fatal("-metrics=false ignored")
	}
}

func TestParseConfigDrainFlag(t *testing.T) {
	c, err := parseConfig([]string{"-drain", "3s"})
	if err != nil {
		t.Fatal(err)
	}
	if c.drain != 3*time.Second {
		t.Fatalf("drain = %v", c.drain)
	}
	if _, err := parseConfig([]string{"-drain", "-1s"}); err == nil {
		t.Fatal("negative -drain accepted")
	}
	// The default leaves room for in-flight sessions.
	c, err = parseConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.drain <= 0 {
		t.Fatalf("default drain = %v, want positive", c.drain)
	}
}

package main

import "io"

// newPipe aliases io.Pipe for readability at the call site.
func newPipe() (*io.PipeReader, *io.PipeWriter) { return io.Pipe() }

package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asf"
)

func TestDemoPublish(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-demo", "-dir", dir}); err != nil {
		t.Fatalf("run -demo: %v", err)
	}
	out := filepath.Join(dir, "published.asf")
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("published output missing: %v", err)
	}
	defer f.Close()
	h, packets, _, err := asf.ReadAll(f)
	if err != nil {
		t.Fatalf("published output unparsable: %v", err)
	}
	if len(h.Scripts) == 0 || len(packets) == 0 {
		t.Fatalf("published output malformed: scripts=%d packets=%d", len(h.Scripts), len(packets))
	}
}

func TestMissingArguments(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -video/-slides accepted")
	}
}

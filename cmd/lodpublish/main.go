// Command lodpublish is the web publishing manager CLI (§3, Figure 5): it
// takes the path of a recorded video container and a directory of slides
// and produces one synchronized container with temporal script commands,
// printing the resulting multi-level content tree.
//
// Beyond the offline pipeline it is also the cluster's live publishing
// client: with -origin the produced container is pushed onto a running
// origin server (replacing any previous copy under the same name without
// a restart), and with -registry the publish is announced in the
// cluster catalog so every edge invalidates its stale mirror on the next
// heartbeat. -unpublish reverses both.
//
// Usage:
//
//	lodpublish -video video.asf -slides slides/ -o published.asf
//	lodpublish -demo -dir work/   # generate demo inputs first, then publish
//
//	# produce and push live onto a running cluster
//	lodpublish -demo -origin http://origin:8080 -registry http://origin:9090 -name lecture1
//
//	# take lecture1 down cluster-wide; in-flight sessions finish
//	lodpublish -unpublish lecture1 -origin http://origin:8080 -registry http://origin:9090
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/proto"
	"repro/internal/publish"
	"repro/internal/relay"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lodpublish:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lodpublish", flag.ContinueOnError)
	video := fs.String("video", "", "path of the recorded video container")
	slides := fs.String("slides", "", "directory of the presented slides")
	out := fs.String("o", "published.asf", "output path")
	title := fs.String("title", "", "published title (defaults to the recording's)")
	demo := fs.Bool("demo", false, "generate demo recording + slides first")
	dir := fs.String("dir", "wmps-demo", "working directory for -demo")
	origin := fs.String("origin", "", "origin server base URL: push the published container live onto it")
	registry := fs.String("registry", "", "cluster registry base URL: announce the publish in the content catalog")
	name := fs.String("name", "", "asset name for live publish (defaults to the output file name without extension)")
	unpublish := fs.String("unpublish", "", "remove this asset live from -origin and/or the -registry catalog instead of publishing")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *unpublish != "" {
		if *origin == "" && *registry == "" {
			return fmt.Errorf("-unpublish needs -origin and/or -registry to act on")
		}
		return runUnpublish(*unpublish, *origin, *registry)
	}

	if *demo {
		profile, err := codec.ByName("dsl-300k")
		if err != nil {
			return err
		}
		lec, err := capture.NewLecture(capture.LectureConfig{
			Title: "Demo lecture", Duration: 60 * time.Second, Profile: profile,
			SlideCount: 12, AnnotationEvery: 20 * time.Second, Seed: 2002,
		})
		if err != nil {
			return err
		}
		paths, err := publish.WriteRawLecture(lec, *dir)
		if err != nil {
			return err
		}
		*video = paths.VideoPath
		*slides = paths.SlidesDir
		if *out == "published.asf" {
			*out = filepath.Join(*dir, "published.asf")
		}
		fmt.Printf("demo inputs written under %s\n", *dir)
	}
	if *video == "" || *slides == "" {
		return fmt.Errorf("both -video and -slides are required (or use -demo)")
	}

	res, err := publish.Publish(publish.Request{
		Title:      *title,
		VideoPath:  *video,
		SlidesDir:  *slides,
		OutputPath: *out,
	})
	if err != nil {
		return err
	}
	fmt.Printf("published %s: %d slides, %d script commands, %v total\n",
		res.AssetPath, res.Slides, res.Scripts, res.Duration)
	fmt.Println("content tree of the published presentation:")
	fmt.Print(res.Tree.String())
	for q, d := range res.Tree.LevelNodes() {
		fmt.Printf("  level %d presentation time: %v\n", q, d)
	}

	if *origin != "" || *registry != "" {
		assetName := *name
		if assetName == "" {
			base := filepath.Base(res.AssetPath)
			assetName = strings.TrimSuffix(base, filepath.Ext(base))
		}
		return runLivePublish(assetName, res.AssetPath, *origin, *registry)
	}
	return nil
}

// runLivePublish pushes a produced container onto a running origin and
// announces it in the registry catalog. The origin push happens first:
// by the time edges learn of the new revision and invalidate their
// mirrors, the origin already serves the fresh bytes, so re-mirroring
// never races the swap.
func runLivePublish(name, path, origin, registry string) error {
	if origin != "" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = relay.PublishAsset(nil, origin, name, bufio.NewReader(f))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("push to origin: %w", err)
		}
		fmt.Printf("pushed %q live onto origin %s\n", name, origin)
	}
	if registry != "" {
		ver, err := relay.PublishCatalog(nil, registry, proto.PublishMsg{
			Asset: &proto.CatalogAsset{Name: name},
		})
		if err != nil {
			return fmt.Errorf("announce in catalog: %w", err)
		}
		fmt.Printf("announced %q in catalog (version %d)\n", name, ver)
	}
	return nil
}

// runUnpublish takes an asset down live: removed from the origin (new
// opens 404, in-flight sessions finish) and withdrawn from the catalog
// (edges drop their mirrors on the next heartbeat). A 404 on one leg
// means the asset was already gone there — a restarted origin forgets
// its live publishes while the catalog remembers them — so it is noted
// and the other leg still runs; only both legs missing is an error.
func runUnpublish(name, origin, registry string) error {
	removed := 0
	if origin != "" {
		switch err := relay.UnpublishAsset(nil, origin, name); {
		case err == nil:
			removed++
			fmt.Printf("removed %q from origin %s\n", name, origin)
		case relay.IsNotFound(err):
			fmt.Printf("origin %s does not have %q (already removed)\n", origin, name)
		default:
			return fmt.Errorf("unpublish from origin: %w", err)
		}
	}
	if registry != "" {
		switch ver, err := relay.UnpublishCatalog(nil, registry, proto.UnpublishMsg{Asset: name}); {
		case err == nil:
			removed++
			fmt.Printf("withdrew %q from catalog (version %d)\n", name, ver)
		case relay.IsNotFound(err):
			fmt.Printf("catalog at %s does not list %q (already withdrawn)\n", registry, name)
		default:
			return fmt.Errorf("withdraw from catalog: %w", err)
		}
	}
	if removed == 0 {
		return fmt.Errorf("%q was not present anywhere", name)
	}
	return nil
}

// Command lodpublish is the web publishing manager CLI (§3, Figure 5): it
// takes the path of a recorded video container and a directory of slides
// and produces one synchronized container with temporal script commands,
// printing the resulting multi-level content tree.
//
// Usage:
//
//	lodpublish -video video.asf -slides slides/ -o published.asf
//	lodpublish -demo -dir work/   # generate demo inputs first, then publish
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/publish"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lodpublish:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lodpublish", flag.ContinueOnError)
	video := fs.String("video", "", "path of the recorded video container")
	slides := fs.String("slides", "", "directory of the presented slides")
	out := fs.String("o", "published.asf", "output path")
	title := fs.String("title", "", "published title (defaults to the recording's)")
	demo := fs.Bool("demo", false, "generate demo recording + slides first")
	dir := fs.String("dir", "wmps-demo", "working directory for -demo")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *demo {
		profile, err := codec.ByName("dsl-300k")
		if err != nil {
			return err
		}
		lec, err := capture.NewLecture(capture.LectureConfig{
			Title: "Demo lecture", Duration: 60 * time.Second, Profile: profile,
			SlideCount: 12, AnnotationEvery: 20 * time.Second, Seed: 2002,
		})
		if err != nil {
			return err
		}
		paths, err := publish.WriteRawLecture(lec, *dir)
		if err != nil {
			return err
		}
		*video = paths.VideoPath
		*slides = paths.SlidesDir
		if *out == "published.asf" {
			*out = filepath.Join(*dir, "published.asf")
		}
		fmt.Printf("demo inputs written under %s\n", *dir)
	}
	if *video == "" || *slides == "" {
		return fmt.Errorf("both -video and -slides are required (or use -demo)")
	}

	res, err := publish.Publish(publish.Request{
		Title:      *title,
		VideoPath:  *video,
		SlidesDir:  *slides,
		OutputPath: *out,
	})
	if err != nil {
		return err
	}
	fmt.Printf("published %s: %d slides, %d script commands, %v total\n",
		res.AssetPath, res.Slides, res.Scripts, res.Duration)
	fmt.Println("content tree of the published presentation:")
	fmt.Print(res.Tree.String())
	for q, d := range res.Tree.LevelNodes() {
		fmt.Printf("  level %d presentation time: %v\n", q, d)
	}
	return nil
}

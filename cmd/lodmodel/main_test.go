package main

import (
	"testing"
)

func TestDotOutputForEachModel(t *testing.T) {
	for _, m := range []string{"ocpn", "xocpn", "extended"} {
		if err := run([]string{"-model", m, "-slides", "2", "-duration", "10s"}); err != nil {
			t.Errorf("model %s: %v", m, err)
		}
	}
}

func TestAnalyzeLectureNet(t *testing.T) {
	if err := run([]string{"-model", "extended", "-slides", "2", "-duration", "10s", "-analyze"}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeFloorNet(t *testing.T) {
	if err := run([]string{"-floor", "2", "-analyze"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownModel(t *testing.T) {
	if err := run([]string{"-model", "bogus"}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

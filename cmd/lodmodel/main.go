// Command lodmodel builds the synchronization Petri net for a lecture
// presentation and emits it in Graphviz dot format, together with the
// structural analysis (safety, deadlocks, P-invariants) — the model
// diagrams the paper presents, regenerated from code.
//
// Usage:
//
//	lodmodel -model extended -slides 4 | dot -Tsvg > model.svg
//	lodmodel -model ocpn -analyze
//	lodmodel -floor 3 -analyze        # the floor-control net instead
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/ocpn"
	"repro/internal/petri"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lodmodel:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lodmodel", flag.ContinueOnError)
	modelName := fs.String("model", "extended", "model kind: ocpn, xocpn, extended")
	slides := fs.Int("slides", 3, "slides in the generated lecture")
	duration := fs.Duration("duration", 30*time.Second, "lecture duration")
	floor := fs.Int("floor", 0, "instead of a lecture net, emit the floor-control net for N users")
	analyze := fs.Bool("analyze", false, "print structural analysis instead of dot")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var net *petri.Net
	var initial petri.Marking
	if *floor > 0 {
		var err error
		net, initial, err = ocpn.FloorControlNet(*floor)
		if err != nil {
			return err
		}
	} else {
		kind, err := parseKind(*modelName)
		if err != nil {
			return err
		}
		profile, err := codec.ByName("modem-56k")
		if err != nil {
			return err
		}
		lec, err := capture.NewLecture(capture.LectureConfig{
			Title: "model", Duration: *duration, Profile: profile,
			SlideCount: *slides, Seed: 1,
		})
		if err != nil {
			return err
		}
		model, err := ocpn.Build(kind, lec.ToPresentation())
		if err != nil {
			return err
		}
		net, initial = model.Net, model.Initial
		// Structural analysis treats channel tokens as present.
		if kind != ocpn.OCPN {
			initial = initial.Clone()
			for _, s := range model.Segments() {
				initial[petri.PlaceID("chan_"+s.ID)] = 1
			}
		}
	}

	if !*analyze {
		fmt.Print(net.Dot())
		return nil
	}

	fmt.Printf("net: %s — %d places, %d transitions\n",
		net.Name, len(net.Places()), len(net.Transitions()))
	safe, complete := net.IsSafe(initial, 200_000)
	fmt.Printf("1-bounded (safe): %v (exploration complete: %v)\n", safe, complete)
	res := net.Reachability(initial, 200_000)
	fmt.Printf("reachable markings: %d (truncated: %v), dead markings: %d\n",
		res.States, res.Truncated, len(res.Deadlocks))
	invs := net.PInvariants()
	fmt.Printf("P-invariants: %d\n", len(invs))
	for i, inv := range invs {
		if i >= 8 {
			fmt.Printf("  … and %d more\n", len(invs)-8)
			break
		}
		fmt.Printf("  %v = %d\n", inv, petri.InvariantSum(inv, initial))
	}
	tinvs := net.TInvariants()
	fmt.Printf("T-invariants (cyclic behaviours): %d\n", len(tinvs))
	return nil
}

func parseKind(name string) (ocpn.ModelKind, error) {
	switch name {
	case "ocpn":
		return ocpn.OCPN, nil
	case "xocpn":
		return ocpn.XOCPN, nil
	case "extended":
		return ocpn.Extended, nil
	default:
		return 0, fmt.Errorf("unknown model %q (want ocpn, xocpn, extended)", name)
	}
}

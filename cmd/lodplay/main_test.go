package main

import (
	"bufio"
	"net/url"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/client"
	"repro/internal/codec"
	"repro/internal/encoder"
)

func encodeTemp(t *testing.T) string {
	t.Helper()
	p, err := codec.ByName("modem-56k")
	if err != nil {
		t.Fatal(err)
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "cli play", Duration: 2 * time.Second, Profile: p, SlideCount: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lec.asf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(f)
	if _, err := encoder.EncodeLecture(lec, encoder.Config{}, bw); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPlayFile(t *testing.T) {
	if err := run([]string{"-in", encodeTemp(t), "-v"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestPlayArgumentValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no input accepted")
	}
	if err := run([]string{"-in", "a", "-url", "b"}); err == nil {
		t.Fatal("both inputs accepted")
	}
	if err := run([]string{"-in", "x", "-start", "5s"}); err == nil {
		t.Fatal("-start without -url accepted")
	}
	if err := run([]string{"-in", "/does/not/exist"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFailoverFlagValidation(t *testing.T) {
	if err := run([]string{"-in", "whatever.asf", "-failover", "2"}); err == nil {
		t.Fatal("-failover without -url accepted")
	}
	if err := run([]string{"-url", "http://reg/vod/x", "-failover", "-1"}); err == nil {
		t.Fatal("negative -failover accepted")
	}
}

// TestSpecFromURL covers the -failover URL → SDK spec translation: both
// API forms, decoded names, seek offsets and bandwidth from the query,
// and refusal of non-stream paths.
func TestSpecFromURL(t *testing.T) {
	for _, tc := range []struct {
		raw  string
		want client.Spec
	}{
		{"http://reg:9090/vod/lec-1", client.Spec{Kind: client.VOD, Name: "lec-1"}},
		{"http://reg:9090/v1/vod/lec-1?start=2s", client.Spec{Kind: client.VOD, Name: "lec-1", Start: 2 * time.Second}},
		{"http://reg:9090/v1/live/class", client.Spec{Kind: client.Live, Name: "class"}},
		{"http://reg:9090/group/g?bw=768000", client.Spec{Kind: client.Group, Name: "g", Bandwidth: 768000}},
		{"http://reg:9090/v1/vod/week%201%2Fintro", client.Spec{Kind: client.VOD, Name: "week 1/intro"}},
	} {
		u, err := url.Parse(tc.raw)
		if err != nil {
			t.Fatal(err)
		}
		got, err := specFromURL(u)
		if err != nil {
			t.Fatalf("specFromURL(%s): %v", tc.raw, err)
		}
		if got.Kind != tc.want.Kind || got.Name != tc.want.Name ||
			got.Start != tc.want.Start || got.Bandwidth != tc.want.Bandwidth {
			t.Errorf("specFromURL(%s) = %+v, want %+v", tc.raw, got, tc.want)
		}
	}
	for _, raw := range []string{
		"http://reg:9090/registry/nodes", // not a stream
		"http://reg:9090/fetch/lec",      // mirror path, not playable
		"http://reg:9090/vod/",           // empty name
		"http://reg:9090/vod/lec?start=bogus",
		"http://reg:9090/group/g?bw=-1",
	} {
		u, err := url.Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := specFromURL(u); err == nil {
			t.Errorf("specFromURL(%s) accepted", raw)
		}
	}
}

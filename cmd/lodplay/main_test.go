package main

import (
	"bufio"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/encoder"
)

func encodeTemp(t *testing.T) string {
	t.Helper()
	p, err := codec.ByName("modem-56k")
	if err != nil {
		t.Fatal(err)
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "cli play", Duration: 2 * time.Second, Profile: p, SlideCount: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lec.asf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(f)
	if _, err := encoder.EncodeLecture(lec, encoder.Config{}, bw); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPlayFile(t *testing.T) {
	if err := run([]string{"-in", encodeTemp(t), "-v"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestPlayArgumentValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no input accepted")
	}
	if err := run([]string{"-in", "a", "-url", "b"}); err == nil {
		t.Fatal("both inputs accepted")
	}
	if err := run([]string{"-in", "x", "-start", "5s"}); err == nil {
		t.Fatal("-start without -url accepted")
	}
	if err := run([]string{"-in", "/does/not/exist"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFailoverFlagValidation(t *testing.T) {
	if err := run([]string{"-in", "whatever.asf", "-failover", "2"}); err == nil {
		t.Fatal("-failover without -url accepted")
	}
	if err := run([]string{"-url", "http://reg/vod/x", "-failover", "-1"}); err == nil {
		t.Fatal("negative -failover accepted")
	}
}

// Command lodplay is the headless player: it fetches a stream from a file
// or HTTP URL, executes its script commands, and reports render metrics
// (frames, slide flips, annotations, skew, stalls).
//
// Usage:
//
//	lodplay -in published.asf
//	lodplay -url http://localhost:8080/vod/lecture1 -realtime
//	lodplay -url http://localhost:8080/vod/lecture1 -server-status
//	lodplay -url http://registry:9090/vod/lecture1 -failover 3
//
// Both the /v1 and the legacy unversioned URL forms are accepted.
//
// With -server-status the player also fetches the serving node's JSON
// GET /status snapshot after playback and prints it — the client-side
// view of the server's counters (sessions, bytes, cache traffic on an
// edge; see internal/metrics). When the played URL was a cluster
// registry (-failover), the registry's per-node health listing
// (GET /v1/registry/nodes: alive/dead/draining, heartbeat age, load)
// is printed too.
//
// With -failover N (the -url must point at a cluster registry), the
// player opens the stream through the internal/client session SDK and
// survives edge churn: when the edge serving it refuses the connection
// or drops the stream mid-play, the session reports the failure to the
// registry, asks for another edge — excluding the one it escaped — and
// resumes a VOD stream at the last media offset it received, up to N
// times. The same SDK internal/loadgen's virtual clients run.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/player"
	"repro/internal/proto"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lodplay:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lodplay", flag.ContinueOnError)
	in := fs.String("in", "", "stored container to play")
	rawURL := fs.String("url", "", "HTTP URL to play (e.g. http://host:8080/vod/name)")
	realtime := fs.Bool("realtime", false, "present at PTS on the wall clock")
	jitter := fs.Int("jitter-buffer", 0, "jitter buffer depth in packets")
	drm := fs.Bool("license", false, "hold a DRM playback license")
	verbose := fs.Bool("v", false, "print every slide flip and annotation")
	start := fs.Duration("start", 0, "seek a -url VOD stream to this offset (server-side)")
	serverStatus := fs.Bool("server-status", false, "after playing a -url stream, fetch and print the server's /status snapshot (plus per-node health through a registry)")
	failover := fs.Int("failover", 0, "retry a -url stream through its registry up to N times when the serving edge dies, resuming VOD at the last received offset")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*in == "") == (*rawURL == "") {
		return fmt.Errorf("exactly one of -in or -url is required")
	}
	if *serverStatus && *rawURL == "" {
		return fmt.Errorf("-server-status requires -url")
	}
	if *failover < 0 {
		return fmt.Errorf("-failover must be >= 0, got %d", *failover)
	}
	if *failover > 0 && *rawURL == "" {
		return fmt.Errorf("-failover requires -url pointing at a cluster registry")
	}
	if *start > 0 {
		if *rawURL == "" {
			return fmt.Errorf("-start requires -url")
		}
		u, err := url.Parse(*rawURL)
		if err != nil {
			return err
		}
		q := u.Query()
		q.Set(proto.ParamStart, proto.FormatStart(*start))
		u.RawQuery = q.Encode()
		*rawURL = u.String()
	}

	opts := player.Options{
		Realtime:          *realtime,
		JitterBufferDepth: *jitter,
		LicenseDRM:        *drm,
	}

	var m *player.Metrics
	var err error
	if *rawURL != "" && *failover > 0 {
		m, err = playFailover(opts, *rawURL, *failover)
	} else if *rawURL != "" {
		m, err = player.New(opts).PlayURL(context.Background(), *rawURL)
	} else {
		var f *os.File
		f, err = os.Open(*in)
		if err != nil {
			return err
		}
		defer func() {
			_ = f.Close()
		}()
		m, err = player.New(opts).Play(bufio.NewReader(f))
	}
	if err != nil {
		return err
	}

	fmt.Printf("played: %d video frames (%d decodable, %d broken), %d audio blocks\n",
		m.VideoFrames, m.Decodable, m.BrokenFrames, m.AudioBlocks)
	fmt.Printf("scripts: %d slide flips, %d annotations\n", m.SlidesShown, m.Annotations)
	fmt.Printf("bytes: %d, stalls: %d (%v total)\n", m.BytesRead, m.Stalls, m.StallTime)
	if *realtime {
		fmt.Printf("skew: max %v, mean %v\n", m.MaxSkew, m.MeanSkew)
	}
	if *verbose {
		for _, e := range m.Events {
			if e.Kind == player.EventSlideShown || e.Kind == player.EventAnnotation {
				fmt.Printf("  %-10s pts=%-8v %q\n", e.Kind, e.PTS, e.Param)
			}
		}
	}
	if *serverStatus {
		// Ask the node that actually served the stream: through a relay
		// registry the play followed a 307, so the final URL names the
		// edge whose counters the session landed on.
		target := m.FinalURL
		if target == "" {
			target = *rawURL
		}
		if err := printServerStatus(target); err != nil {
			return fmt.Errorf("server status: %w", err)
		}
		// When the -url host is a cluster registry, print its per-node
		// health view too — which edges are alive, dead, or draining,
		// and how stale their heartbeats are. A host that doesn't serve
		// the node listing (a plain server, an edge) is silently skipped.
		if u, err := url.Parse(*rawURL); err == nil {
			printRegistryNodesIfAny(client.New(u.Scheme + "://" + u.Host))
		}
	}
	return nil
}

// playFailover plays a registry URL with churn tolerance through the
// shared session SDK (internal/client): each attempt resolves the
// stream through the registry, dead edges are reported and excluded
// from the next pick, and segments after a mid-stream failure resume at
// the last received media offset — never earlier than any -start the
// user gave. The merged metrics of every segment are returned as one
// session.
func playFailover(opts player.Options, rawURL string, attempts int) (*player.Metrics, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, err
	}
	spec, err := specFromURL(u)
	if err != nil {
		return nil, err
	}
	spec.Failover = attempts
	spec.Player = opts
	spec.OnRetry = func(edge string, err error) {
		if edge == "" {
			fmt.Fprintf(os.Stderr, "lodplay: %v; retrying through registry\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "lodplay: edge %s failed (%v); failing over\n", edge, err)
	}
	cl := client.New(u.Scheme + "://" + u.Host)
	session, err := cl.Open(context.Background(), spec)
	if err != nil {
		return nil, err
	}
	m, err := session.Play()
	if err != nil {
		return m, fmt.Errorf("lodplay: failover exhausted: %w", err)
	}
	return m, nil
}

// specFromURL recognizes a stream URL (versioned or legacy) as a
// session spec: route family, decoded name, and any seek offset or
// bandwidth declaration in the query.
func specFromURL(u *url.URL) (client.Spec, error) {
	kind, name, ok := proto.SplitStreamPath(u.Path)
	if !ok || kind == proto.StreamFetch {
		return client.Spec{}, fmt.Errorf("lodplay: %s is not a vod/live/group stream path", u.Path)
	}
	spec := client.Spec{Kind: kind, Name: name}
	q := u.Query()
	if raw := q.Get(proto.ParamStart); raw != "" {
		at, err := proto.ParseStart(raw)
		if err != nil {
			return client.Spec{}, err
		}
		spec.Start = at
	}
	if raw := q.Get(proto.ParamBandwidth); raw != "" {
		bw, err := proto.ParseBandwidth(raw)
		if err != nil {
			return client.Spec{}, err
		}
		spec.Bandwidth = bw
	}
	return spec, nil
}

// printServerStatus fetches the /status snapshot of the node that served
// streamURL and writes the JSON to stdout.
func printServerStatus(streamURL string) error {
	u, err := url.Parse(streamURL)
	if err != nil {
		return err
	}
	statusURL := u.Scheme + "://" + u.Host + proto.Versioned(proto.PathStatus)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, statusURL, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %s", statusURL, resp.Status)
	}
	fmt.Printf("server status (%s):\n", statusURL)
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// printRegistryNodesIfAny prints the host's per-node health listing —
// one line per node with its health label, heartbeat age, load score,
// and sessions — when the host serves one; non-registry hosts are
// silently skipped.
func printRegistryNodesIfAny(cl *client.Client) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	nodes, err := cl.Nodes(ctx)
	if err != nil {
		return // not a registry
	}
	fmt.Printf("registry nodes (%s):\n", cl.Registry())
	for _, n := range nodes {
		fmt.Printf("  %-12s %-9s heartbeat %.1fs ago  load %.2f  sessions %d  %s\n",
			n.ID, n.Health, n.HeartbeatAgeSec, n.Load, n.Stats.ActiveClients, n.URL)
	}
}

// Command lodplay is the headless player: it fetches a stream from a file
// or HTTP URL, executes its script commands, and reports render metrics
// (frames, slide flips, annotations, skew, stalls).
//
// Usage:
//
//	lodplay -in published.asf
//	lodplay -url http://localhost:8080/vod/lecture1 -realtime
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/player"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lodplay:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lodplay", flag.ContinueOnError)
	in := fs.String("in", "", "stored container to play")
	url := fs.String("url", "", "HTTP URL to play (e.g. http://host:8080/vod/name)")
	realtime := fs.Bool("realtime", false, "present at PTS on the wall clock")
	jitter := fs.Int("jitter-buffer", 0, "jitter buffer depth in packets")
	drm := fs.Bool("license", false, "hold a DRM playback license")
	verbose := fs.Bool("v", false, "print every slide flip and annotation")
	start := fs.Duration("start", 0, "seek a -url VOD stream to this offset (server-side)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*in == "") == (*url == "") {
		return fmt.Errorf("exactly one of -in or -url is required")
	}
	if *start > 0 {
		if *url == "" {
			return fmt.Errorf("-start requires -url")
		}
		*url = fmt.Sprintf("%s?start=%s", *url, *start)
	}

	pl := player.New(player.Options{
		Realtime:          *realtime,
		JitterBufferDepth: *jitter,
		LicenseDRM:        *drm,
	})

	var m *player.Metrics
	var err error
	if *url != "" {
		m, err = pl.PlayURL(*url)
	} else {
		var f *os.File
		f, err = os.Open(*in)
		if err != nil {
			return err
		}
		defer func() {
			_ = f.Close()
		}()
		m, err = pl.Play(bufio.NewReader(f))
	}
	if err != nil {
		return err
	}

	fmt.Printf("played: %d video frames (%d decodable, %d broken), %d audio blocks\n",
		m.VideoFrames, m.Decodable, m.BrokenFrames, m.AudioBlocks)
	fmt.Printf("scripts: %d slide flips, %d annotations\n", m.SlidesShown, m.Annotations)
	fmt.Printf("bytes: %d, stalls: %d (%v total)\n", m.BytesRead, m.Stalls, m.StallTime)
	if *realtime {
		fmt.Printf("skew: max %v, mean %v\n", m.MaxSkew, m.MeanSkew)
	}
	if *verbose {
		for _, e := range m.Events {
			if e.Kind == player.EventSlideShown || e.Kind == player.EventAnnotation {
				fmt.Printf("  %-10s pts=%-8v %q\n", e.Kind, e.PTS, e.Param)
			}
		}
	}
	return nil
}

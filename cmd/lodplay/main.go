// Command lodplay is the headless player: it fetches a stream from a file
// or HTTP URL, executes its script commands, and reports render metrics
// (frames, slide flips, annotations, skew, stalls).
//
// Usage:
//
//	lodplay -in published.asf
//	lodplay -url http://localhost:8080/vod/lecture1 -realtime
//	lodplay -url http://localhost:8080/vod/lecture1 -server-status
//	lodplay -url http://registry:9090/vod/lecture1 -failover 3
//
// With -server-status the player also fetches the serving node's JSON
// GET /status snapshot after playback and prints it — the client-side
// view of the server's counters (sessions, bytes, cache traffic on an
// edge; see internal/metrics).
//
// With -failover N (the -url must point at a cluster registry), the
// player survives edge churn: when the edge serving it refuses the
// connection or drops the stream mid-play, it reports the failure to
// the registry, asks for another edge — excluding the one it escaped —
// and resumes a VOD stream at the last media offset it received via
// ?start=, up to N times. The same failover protocol internal/loadgen's
// virtual clients run (relay.StreamFetcher).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"

	"repro/internal/player"
	"repro/internal/relay"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lodplay:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lodplay", flag.ContinueOnError)
	in := fs.String("in", "", "stored container to play")
	url := fs.String("url", "", "HTTP URL to play (e.g. http://host:8080/vod/name)")
	realtime := fs.Bool("realtime", false, "present at PTS on the wall clock")
	jitter := fs.Int("jitter-buffer", 0, "jitter buffer depth in packets")
	drm := fs.Bool("license", false, "hold a DRM playback license")
	verbose := fs.Bool("v", false, "print every slide flip and annotation")
	start := fs.Duration("start", 0, "seek a -url VOD stream to this offset (server-side)")
	serverStatus := fs.Bool("server-status", false, "after playing a -url stream, fetch and print the server's /status snapshot")
	failover := fs.Int("failover", 0, "retry a -url stream through its registry up to N times when the serving edge dies, resuming VOD at the last received offset")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*in == "") == (*url == "") {
		return fmt.Errorf("exactly one of -in or -url is required")
	}
	if *serverStatus && *url == "" {
		return fmt.Errorf("-server-status requires -url")
	}
	if *failover < 0 {
		return fmt.Errorf("-failover must be >= 0, got %d", *failover)
	}
	if *failover > 0 && *url == "" {
		return fmt.Errorf("-failover requires -url pointing at a cluster registry")
	}
	if *start > 0 {
		if *url == "" {
			return fmt.Errorf("-start requires -url")
		}
		*url = fmt.Sprintf("%s?start=%s", *url, *start)
	}

	opts := player.Options{
		Realtime:          *realtime,
		JitterBufferDepth: *jitter,
		LicenseDRM:        *drm,
	}
	pl := player.New(opts)

	var m *player.Metrics
	var err error
	if *url != "" && *failover > 0 {
		m, err = playFailover(opts, *url, *failover)
	} else if *url != "" {
		m, err = pl.PlayURL(*url)
	} else {
		var f *os.File
		f, err = os.Open(*in)
		if err != nil {
			return err
		}
		defer func() {
			_ = f.Close()
		}()
		m, err = pl.Play(bufio.NewReader(f))
	}
	if err != nil {
		return err
	}

	fmt.Printf("played: %d video frames (%d decodable, %d broken), %d audio blocks\n",
		m.VideoFrames, m.Decodable, m.BrokenFrames, m.AudioBlocks)
	fmt.Printf("scripts: %d slide flips, %d annotations\n", m.SlidesShown, m.Annotations)
	fmt.Printf("bytes: %d, stalls: %d (%v total)\n", m.BytesRead, m.Stalls, m.StallTime)
	if *realtime {
		fmt.Printf("skew: max %v, mean %v\n", m.MaxSkew, m.MeanSkew)
	}
	if *verbose {
		for _, e := range m.Events {
			if e.Kind == player.EventSlideShown || e.Kind == player.EventAnnotation {
				fmt.Printf("  %-10s pts=%-8v %q\n", e.Kind, e.PTS, e.Param)
			}
		}
	}
	if *serverStatus {
		// Ask the node that actually served the stream: through a relay
		// registry the play followed a 307, so the final URL names the
		// edge whose counters the session landed on.
		target := m.FinalURL
		if target == "" {
			target = *url
		}
		if err := printServerStatus(target); err != nil {
			return fmt.Errorf("server status: %w", err)
		}
	}
	return nil
}

// playFailover plays a registry URL with churn tolerance via the
// shared relay.FailoverSession: each attempt resolves the stream
// through the registry (relay.StreamFetcher reports dead edges and
// excludes them from the next pick), and segments after a mid-stream
// failure resume at the last received media offset — never earlier
// than any -start the user gave. The merged metrics of every segment
// are returned as one session.
func playFailover(opts player.Options, rawURL string, attempts int) (*player.Metrics, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, err
	}
	session := &relay.FailoverSession{
		Fetcher:  relay.NewStreamFetcher(u.Scheme+"://"+u.Host, nil),
		Target:   u.RequestURI(),
		Live:     strings.HasPrefix(u.Path, "/live/"),
		Attempts: attempts,
		Player:   opts,
		OnRetry: func(edge string, err error) {
			if edge == "" {
				fmt.Fprintf(os.Stderr, "lodplay: %v; retrying through registry\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "lodplay: edge %s failed (%v); failing over\n", edge, err)
		},
	}
	m, _, err := session.Run(context.Background())
	if err != nil {
		return m, fmt.Errorf("lodplay: failover exhausted: %w", err)
	}
	return m, nil
}

// printServerStatus fetches the /status snapshot of the node that served
// streamURL and writes the JSON to stdout.
func printServerStatus(streamURL string) error {
	u, err := url.Parse(streamURL)
	if err != nil {
		return err
	}
	statusURL := u.Scheme + "://" + u.Host + "/status"
	resp, err := http.Get(statusURL)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %s", statusURL, resp.Status)
	}
	fmt.Printf("server status (%s):\n", statusURL)
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// Command lodbench is the benchmark front end, with two modes.
//
// Cluster mode drives a load-generation scenario (internal/loadgen) —
// a swarm of virtual clients against an in-process origin + registry +
// edge cluster — and writes a machine-readable benchmark record whose
// schema is documented in BENCHMARKS.md:
//
//	lodbench -scenario mixed -clients 1000 -edges 3     # writes BENCH_cluster.json
//	lodbench -scenario smoke -out BENCH_smoke.json      # the seconds-long CI variant
//	lodbench -scenario churn -clients 400 -edges 3      # kill/restart edges mid-run (BENCH_churn.json)
//	lodbench -scenario scale -clients 10000 -edges 16 -shards 8   # sharded drivers (BENCH_scale.json)
//	lodbench -scenario 'mixed?assets=12&rate=400'       # query-style overrides
//	lodbench -scenarios                                 # list scenarios
//
// Experiment mode regenerates the paper's tables and figures
// (experiments E1–E16 of DESIGN.md) and prints them to stdout:
//
//	lodbench            # run every experiment
//	lodbench -exp E7    # run one experiment
//	lodbench -list      # list experiment IDs and titles
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lodbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lodbench", flag.ContinueOnError)
	exp := fs.String("exp", "", "experiment ID to run (E1..E16); empty runs all")
	list := fs.Bool("list", false, "list experiments and exit")
	scenario := fs.String("scenario", "", "load scenario to run (see -scenarios); switches to cluster mode")
	scenarios := fs.Bool("scenarios", false, "list load scenarios and exit")
	clients := fs.Int("clients", 1000, "virtual clients to run (cluster mode)")
	edges := fs.Int("edges", 3, "edge nodes in the cluster (cluster mode)")
	shards := fs.Int("shards", 0, "shard drivers to split the client population across (cluster mode); 0 uses GOMAXPROCS")
	out := fs.String("out", "", "benchmark record path (cluster mode); default BENCH_cluster.json for the mixed scenario, BENCH_<scenario>.json otherwise")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the scenario run to this file (cluster mode)")
	memprofile := fs.String("memprofile", "", "write a post-run heap profile to this file (cluster mode)")
	assertPerf := fs.Bool("assert-perf", false, "fail unless the record's perf block is populated (packetsPerSec, bytesPerSec, allocsPerPacket, nsPerPacket all nonzero)")
	assertStartupP99 := fs.Duration("assert-startup-p99", 0, "fail when the record's startup p99 exceeds this bound (cluster mode); 0 disables the gate")
	assertHotPulls := fs.Int("assert-hot-pulls", 0, "fail when the hottest asset's worst-edge origin-pull count (cache.perAsset maxEdgePulls) exceeds this bound (cluster mode); 0 disables the gate")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *scenarios {
		for _, s := range loadgen.Scenarios() {
			fmt.Printf("%-8s %s\n", s.Name, s.Description)
		}
		return nil
	}
	if *scenario != "" {
		return runScenario(scenarioOpts{
			spec: *scenario, clients: *clients, edges: *edges, shards: *shards,
			out: *out, cpuprofile: *cpuprofile, memprofile: *memprofile,
			assertPerf: *assertPerf, assertStartupP99: *assertStartupP99,
			assertHotPulls: *assertHotPulls,
		})
	}

	if *list {
		reg := experiments.Registry()
		for _, id := range experiments.IDs() {
			res, err := reg[id]()
			if err != nil {
				return err
			}
			fmt.Printf("%-4s %s\n", res.ID, res.Title)
		}
		return nil
	}

	if *exp != "" {
		runner, ok := experiments.Registry()[*exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %v)", *exp, experiments.IDs())
		}
		res, err := runner()
		if err != nil {
			return err
		}
		printResult(res)
		return nil
	}

	results, err := experiments.RunAll()
	if err != nil {
		return err
	}
	for _, res := range results {
		printResult(res)
	}
	return nil
}

// scenarioOpts is the cluster-mode flag bundle.
type scenarioOpts struct {
	spec                        string
	clients, edges, shards      int
	out, cpuprofile, memprofile string
	assertPerf                  bool
	assertStartupP99            time.Duration
	assertHotPulls              int
}

// runScenario executes one load scenario and writes the record to out.
// An empty out derives the path from the scenario name, so running a
// side scenario can never clobber the committed benchmark of record.
// cpuprofile/memprofile capture pprof profiles of exactly the scenario
// run; assertPerf fails the command when the record's perf block came
// out empty (the CI guard behind `make bench-profile`), and
// assertStartupP99 fails it when startup latency regressed past the
// bound (the guard behind `make bench-scale-smoke`).
func runScenario(o scenarioOpts) error {
	s, err := loadgen.ParseScenario(o.spec)
	if err != nil {
		return err
	}
	out := o.out
	if out == "" {
		if s.Name == "mixed" {
			out = "BENCH_cluster.json" // the benchmark of record
		} else {
			out = "BENCH_" + s.Name + ".json"
		}
	}
	shards := o.shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	fmt.Printf("running scenario %s: %d clients, %d edges, %d shards...\n", s.Name, o.clients, o.edges, shards)
	rep, err := loadgen.RunSharded(context.Background(), s, o.clients, o.edges, shards)
	if err != nil {
		return err
	}
	if o.memprofile != "" {
		f, err := os.Create(o.memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // surface live retention, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("heap profile: %w", err)
		}
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Print(rep.Summary())
	fmt.Printf("record written to %s\n", out)
	// The record is written either way, but failed sessions must fail
	// the command so CI's bench-smoke actually guards the harness.
	if rep.Sessions.Failed > 0 {
		return fmt.Errorf("%d/%d sessions failed: %v",
			rep.Sessions.Failed, rep.Sessions.Requested, rep.Sessions.Errors)
	}
	if o.assertPerf {
		p := rep.Perf
		if p.PacketsPerSec <= 0 || p.BytesPerSec <= 0 || p.AllocsPerPacket <= 0 || p.NsPerPacket <= 0 {
			return fmt.Errorf("perf block not populated: %+v", p)
		}
	}
	if o.assertStartupP99 > 0 {
		bound := float64(o.assertStartupP99) / float64(time.Millisecond)
		if rep.StartupMs.P99 > bound {
			return fmt.Errorf("startup p99 %.1fms exceeds the %.0fms bound", rep.StartupMs.P99, bound)
		}
	}
	// The flashcrowd smoke gate: under miss coalescing and admission, no
	// single edge should re-pull the hot asset from the origin — each
	// flash-crowd demand either hits the mirror or attaches to the one
	// in-flight pull.
	if o.assertHotPulls > 0 {
		if rep.Cache == nil || len(rep.Cache.PerAsset) == 0 {
			return fmt.Errorf("assert-hot-pulls: record has no cache.perAsset block")
		}
		if top := rep.Cache.PerAsset[0]; top.MaxEdgePulls > int64(o.assertHotPulls) {
			return fmt.Errorf("hot asset %s pulled %d× by one edge, bound is %d (duplicate origin pulls)",
				top.Name, top.MaxEdgePulls, o.assertHotPulls)
		}
	}
	return nil
}

func printResult(res *experiments.Result) {
	fmt.Printf("=== %s — %s ===\n%s\n", res.ID, res.Title, res.Text)
}

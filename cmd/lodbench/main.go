// Command lodbench regenerates the paper's tables and figures (experiments
// E1–E12 of DESIGN.md) and prints them to stdout.
//
// Usage:
//
//	lodbench            # run everything
//	lodbench -exp E7    # run one experiment
//	lodbench -list      # list experiment IDs and titles
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lodbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lodbench", flag.ContinueOnError)
	exp := fs.String("exp", "", "experiment ID to run (E1..E12); empty runs all")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		reg := experiments.Registry()
		for _, id := range experiments.IDs() {
			res, err := reg[id]()
			if err != nil {
				return err
			}
			fmt.Printf("%-4s %s\n", res.ID, res.Title)
		}
		return nil
	}

	if *exp != "" {
		runner, ok := experiments.Registry()[*exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q (have %v)", *exp, experiments.IDs())
		}
		res, err := runner()
		if err != nil {
			return err
		}
		printResult(res)
		return nil
	}

	results, err := experiments.RunAll()
	if err != nil {
		return err
	}
	for _, res := range results {
		printResult(res)
	}
	return nil
}

func printResult(res *experiments.Result) {
	fmt.Printf("=== %s — %s ===\n%s\n", res.ID, res.Title, res.Text)
}

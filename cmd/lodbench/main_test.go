package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "E2"}); err != nil {
		t.Fatalf("run -exp E2: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunListScenarios(t *testing.T) {
	if err := run([]string{"-scenarios"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestRunScenarioWritesRecord runs a tiny cluster-mode benchmark and
// checks the BENCH record lands on disk as valid JSON.
func TestRunScenarioWritesRecord(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	err := run([]string{"-scenario", "smoke?rate=80", "-clients", "10", "-edges", "2", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]interface{}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("record is not JSON: %v", err)
	}
	if rep["schema"] != "lod-bench/1" {
		t.Fatalf("schema = %v", rep["schema"])
	}
	if rep["scenario"] != "smoke" {
		t.Fatalf("scenario = %v", rep["scenario"])
	}
	sessions, ok := rep["sessions"].(map[string]interface{})
	if !ok || sessions["requested"].(float64) != 10 {
		t.Fatalf("sessions = %v", rep["sessions"])
	}
}

package main

import (
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "E2"}); err != nil {
		t.Fatalf("run -exp E2: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

package main

import (
	"strings"
	"testing"
)

func TestListNamesAllAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"wirecontract", "vclocktime", "ctxhttp", "protoerror"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownCheckIsUsageError(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-checks", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("run(-checks nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", errOut.String())
	}
}

func TestLintPackageIsSelfClean(t *testing.T) {
	// The linter must pass over its own driver: exit 0, no findings.
	var out, errOut strings.Builder
	if code := run([]string{"./."}, &out, &errOut); code != 0 {
		t.Fatalf("run(./.) = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("unexpected findings:\n%s", out.String())
	}
}

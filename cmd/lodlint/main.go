// Command lodlint runs the repo-native static-analysis suite over Go
// packages. It is the mechanical successor to the old `make api-check`
// grep: four AST-level analyzers enforce the wire contract, the
// virtual-clock discipline, cancellation hygiene, and the proto error
// body. See internal/lint for the analyzers and DESIGN.md for the
// invariants they encode.
//
// Usage:
//
//	lodlint [-checks name,name] [-list] [packages]
//
// Packages default to ./... and accept any `go list` pattern. The exit
// status is 1 when findings are reported, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lodlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: lodlint [-checks name,name] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected := all
	if *checks != "" {
		byName := make(map[string]*lint.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "lodlint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
		if len(selected) == 0 {
			fmt.Fprintf(stderr, "lodlint: -checks selected no analyzers\n")
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "lodlint: %v\n", err)
		return 2
	}

	diags := lint.Run(pkgs, selected)
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "lodlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

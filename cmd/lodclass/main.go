// Command lodclass runs a classroom session server: the floor-control and
// annotation API of a live lecture hall, exposed over HTTP alongside an
// optional live media channel.
//
// Usage:
//
//	lodclass -addr :8090 -name lecture-hall
//
// Students then interact with:
//
//	POST /class/join?user=alice
//	POST /class/floor/request?user=alice
//	POST /class/annotate?user=alice&text=question
//	GET  /class/annotations?since=0
//	GET  /class/state
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/session"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lodclass:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lodclass", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address")
	name := fs.String("name", "lecture-hall", "classroom name")
	teacher := fs.String("teacher", "teacher", "pre-joined teacher user id")
	if err := fs.Parse(args); err != nil {
		return err
	}

	class, err := newClassroom(*name, *teacher)
	if err != nil {
		return err
	}
	fmt.Printf("classroom %q listening on %s (teacher: %s)\n", *name, *addr, *teacher)
	return http.ListenAndServe(*addr, session.NewAPI(class).Handler())
}

// newClassroom builds the classroom, pre-joining the teacher when one is
// named.
func newClassroom(name, teacher string) (*session.Classroom, error) {
	class := session.NewClassroom(name, nil)
	if teacher != "" {
		if _, err := class.Join(teacher, session.RoleTeacher); err != nil {
			return nil, err
		}
	}
	return class, nil
}

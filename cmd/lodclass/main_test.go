package main

import (
	"net/http/httptest"
	"net/url"
	"testing"

	"repro/internal/session"
)

func TestNewClassroomPreJoinsTeacher(t *testing.T) {
	class, err := newClassroom("hall", "prof")
	if err != nil {
		t.Fatal(err)
	}
	// The teacher holds teaching rights from the start: annotations work
	// without a floor request.
	api := httptest.NewServer(session.NewAPI(class).Handler())
	defer api.Close()

	post := func(path string, params url.Values) int {
		resp, err := api.Client().Post(api.URL+path+"?"+params.Encode(), "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/class/annotate", url.Values{"user": {"prof"}, "text": {"welcome"}}); code != 204 {
		t.Fatalf("teacher annotate: %d", code)
	}
	if code := post("/class/join", url.Values{"user": {"alice"}}); code != 200 {
		t.Fatalf("student join: %d", code)
	}

	resp, err := api.Client().Get(api.URL + "/class/state")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("state: %d", resp.StatusCode)
	}
}

func TestNewClassroomWithoutTeacher(t *testing.T) {
	class, err := newClassroom("hall", "")
	if err != nil {
		t.Fatal(err)
	}
	if class == nil {
		t.Fatal("no classroom")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

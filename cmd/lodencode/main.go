// Command lodencode is the encoder front end (§2.5 configuration module):
// it captures a synthetic lecture from the simulated camera and microphone
// and encodes it into a stored container at the selected bandwidth profile.
//
// Usage:
//
//	lodencode -o lecture.asf -profile dsl-300k -duration 60s -slides 12
//	lodencode -profiles      # list the bandwidth profile ladder
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/encoder"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lodencode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lodencode", flag.ContinueOnError)
	out := fs.String("o", "lecture.asf", "output container path")
	profileName := fs.String("profile", "dsl-300k", "bandwidth profile")
	duration := fs.Duration("duration", 60*time.Second, "lecture duration")
	slides := fs.Int("slides", 12, "number of slides")
	annotate := fs.Duration("annotate-every", 20*time.Second, "annotation interval (0 disables)")
	title := fs.String("title", "Recorded lecture", "content title")
	live := fs.Bool("live", false, "encode as a live-style stream (in-band scripts, no index)")
	seed := fs.Int64("seed", 2002, "deterministic capture seed")
	listProfiles := fs.Bool("profiles", false, "list bandwidth profiles and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listProfiles {
		for _, p := range codec.Ladder() {
			fmt.Printf("%-10s %-22s %dx%d@%dfps  %4d kbps  quality %.1f dB\n",
				p.Name, p.Audience, p.Width, p.Height, p.FrameRate,
				p.TotalBitsPerSecond()/1000, p.Quality())
		}
		return nil
	}

	profile, err := codec.ByName(*profileName)
	if err != nil {
		return err
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title:           *title,
		Duration:        *duration,
		Profile:         profile,
		SlideCount:      *slides,
		AnnotationEvery: *annotate,
		Seed:            *seed,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	stats, err := encoder.EncodeLecture(lec, encoder.Config{Live: *live, LeadTime: time.Second}, bw)
	if err != nil {
		_ = f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("encoded %s: %d packets (%d video, %d audio, %d image, %d script), %v, %d kbps\n",
		*out, stats.Packets, stats.VideoPackets, stats.AudioPackets,
		stats.ImagePackets, stats.ScriptPkts, stats.Duration, stats.BitsPerSecond()/1000)
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asf"
)

func TestEncodeToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.asf")
	err := run([]string{
		"-o", out, "-profile", "modem-56k", "-duration", "2s", "-slides", "2",
		"-annotate-every", "1s",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, packets, ix, err := asf.ReadAll(f)
	if err != nil {
		t.Fatalf("output unparsable: %v", err)
	}
	if h.Title != "Recorded lecture" || len(packets) == 0 || len(ix) == 0 {
		t.Fatalf("output malformed: title=%q packets=%d index=%d", h.Title, len(packets), len(ix))
	}
}

func TestListProfiles(t *testing.T) {
	if err := run([]string{"-profiles"}); err != nil {
		t.Fatalf("run -profiles: %v", err)
	}
}

func TestUnknownProfile(t *testing.T) {
	if err := run([]string{"-profile", "nope", "-o", filepath.Join(t.TempDir(), "x.asf")}); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// Package repro is a from-scratch Go reproduction of "Implementing a
// Distributed Lecture-on-Demand Multimedia Presentation System" (Deng,
// Shih, Shiau, Chang, Liu — ICDCS Workshops 2002): the WMPS web-based
// multimedia presentation system, including the extended timed Petri net
// synchronization model, the multiple-level content tree, an open ASF-like
// stream container with script commands, simulated codecs with the
// bandwidth profile ladder, an HTTP streaming server, an instrumented
// player, and multi-user floor control. The streaming tier scales out
// through internal/relay: edge nodes mirror stored assets and re-fan-out
// live channels from an origin, and a cluster registry redirects clients
// to the edge with the least bandwidth in flight (lodserver's
// -origin/-edge/-registry flags).
//
// Edge mirroring is bounded: with -cache-bytes set, mirrored assets live
// in a byte-capacity LRU that evicts least-recently-demanded mirrors
// while pinning anything actively streaming, so an edge serves an
// unbounded catalog in bounded memory. The whole serving stack is
// observable through internal/metrics — a dependency-free
// counter/gauge/histogram registry every role exposes as Prometheus text
// at GET /metrics and as a JSON snapshot at GET /status.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-vs-measured record, and README.md for a quickstart. The root
// package holds the benchmark harness (bench_test.go) that regenerates the
// paper's tables and figures; the library lives under internal/ and the
// runnable tools under cmd/ and examples/.
package repro
